//! Requests, service demands, and QoS targets.

use std::fmt;

/// Unique identifier of a request within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// The service demand of one request, split into a frequency-sensitive
/// compute part and a frequency-insensitive memory part.
///
/// `work` is in abstract work units; the workload model defines how fast a
/// core of each kind/frequency retires work units
/// ([`LcModel::service_speed`](crate::LcModel::service_speed)). `mem_s` is
/// wall-clock seconds spent waiting on memory, unaffected by DVFS — this is
/// what makes low-frequency operating points attractive for memory-bound
/// services.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Compute demand, in work units.
    pub work: f64,
    /// Memory-stall demand, in seconds (frequency-insensitive).
    pub mem_s: f64,
}

impl Demand {
    /// Creates a demand.
    ///
    /// # Panics
    ///
    /// Panics if either component is negative or not finite.
    pub fn new(work: f64, mem_s: f64) -> Self {
        assert!(
            work.is_finite() && work >= 0.0 && mem_s.is_finite() && mem_s >= 0.0,
            "invalid demand: work {work}, mem {mem_s}"
        );
        Demand { work, mem_s }
    }
}

/// One latency-critical request travelling through the service node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Identifier (monotonically increasing in arrival order).
    pub id: RequestId,
    /// Arrival time, seconds since simulation start.
    pub arrival: f64,
    /// Remaining compute demand, work units.
    pub work_left: f64,
    /// Remaining memory demand, seconds.
    pub mem_left: f64,
}

impl Request {
    /// Creates a fresh request with its full demand outstanding.
    pub fn new(id: RequestId, arrival: f64, demand: Demand) -> Self {
        Request {
            id,
            arrival,
            work_left: demand.work,
            mem_left: demand.mem_s,
        }
    }

    /// Time this request has spent in the system as of `now`.
    pub fn age(&self, now: f64) -> f64 {
        (now - self.arrival).max(0.0)
    }
}

/// A tail-latency QoS target: "the `percentile`-ile latency must stay below
/// `target_s` seconds".
///
/// The paper uses the 95th percentile at 10 ms for Memcached and the 90th
/// percentile at 500 ms for Web-Search (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosTarget {
    /// Percentile in `(0, 1)`, e.g. `0.95`.
    pub percentile: f64,
    /// Latency target in seconds.
    pub target_s: f64,
}

impl QosTarget {
    /// Creates a QoS target.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < percentile < 1` and `target_s > 0`.
    pub fn new(percentile: f64, target_s: f64) -> Self {
        assert!(
            percentile > 0.0 && percentile < 1.0,
            "percentile {percentile} not in (0,1)"
        );
        assert!(
            target_s.is_finite() && target_s > 0.0,
            "invalid target: {target_s}"
        );
        QosTarget {
            percentile,
            target_s,
        }
    }

    /// QoS *tardiness* of a measured tail latency: `measured / target`
    /// (paper §3.4 footnote). Values above 1 are violations.
    pub fn tardiness(&self, measured_s: f64) -> f64 {
        measured_s / self.target_s
    }

    /// Whether a measured tail latency violates the target.
    pub fn violated(&self, measured_s: f64) -> bool {
        measured_s > self.target_s
    }
}

impl fmt::Display for QosTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p{:.0} ≤ {:.0} ms",
            self.percentile * 100.0,
            self.target_s * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_age() {
        let r = Request::new(RequestId(1), 2.0, Demand::new(1.0, 0.0));
        assert_eq!(r.age(5.0), 3.0);
        assert_eq!(r.age(1.0), 0.0);
    }

    #[test]
    fn qos_tardiness_and_violation() {
        let q = QosTarget::new(0.95, 0.010);
        assert_eq!(q.tardiness(0.020), 2.0);
        assert!(q.violated(0.0101));
        assert!(!q.violated(0.0099));
    }

    #[test]
    fn qos_display() {
        assert_eq!(QosTarget::new(0.95, 0.010).to_string(), "p95 ≤ 10 ms");
        assert_eq!(QosTarget::new(0.90, 0.5).to_string(), "p90 ≤ 500 ms");
    }

    #[test]
    #[should_panic(expected = "not in (0,1)")]
    fn qos_rejects_bad_percentile() {
        QosTarget::new(95.0, 0.010);
    }

    #[test]
    #[should_panic(expected = "invalid demand")]
    fn demand_rejects_negative() {
        Demand::new(-1.0, 0.0);
    }
}
