//! Probability distributions used by the workload models.
//!
//! Implemented from scratch on top of [`SimRng`] uniforms so
//! the simulator has no external RNG dependency at all:
//! exponential (inversion), normal (Box–Muller), lognormal, bounded Pareto
//! (inversion) and Zipf (rejection-free inversion over a precomputed CDF).

use crate::rng::{Sampler, SimRng};

/// Exponential distribution with the given rate (mean `1/rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate: {rate}");
        Exponential { rate }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inversion: -ln(1-U)/rate; 1-U avoids ln(0).
        -(1.0 - rng.uniform()).ln() / self.rate
    }
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters: mean {mean}, std dev {std_dev}"
        );
        Normal { mean, std_dev }
    }
}

impl Sampler for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = 1.0 - rng.uniform(); // (0, 1]
        let u2 = rng.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Lognormal distribution: `exp(N(mu, sigma))`.
///
/// Heavy-tailed service demands (e.g. Web-Search queries over a Zipfian
/// corpus) are modelled with large `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    base: Normal,
}

impl LogNormal {
    /// Creates a lognormal with location `mu` and scale `sigma` (parameters
    /// of the underlying normal).
    ///
    /// # Panics
    ///
    /// Panics if parameters are invalid for [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            base: Normal::new(mu, sigma),
        }
    }

    /// Constructs the lognormal whose *median* is `median` with scale
    /// `sigma`. The median parameterization is convenient for calibrating
    /// service times ("a typical request takes X µs").
    ///
    /// # Panics
    ///
    /// Panics if `median` is not strictly positive.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive: {median}");
        Self::new(median.ln(), sigma)
    }

    /// Mean of the distribution, `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.base.mean + self.base.std_dev * self.base.std_dev / 2.0).exp()
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.base.sample(rng).exp()
    }
}

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(
            lo > 0.0 && hi > lo && alpha > 0.0,
            "invalid bounded Pareto: lo {lo}, hi {hi}, alpha {alpha}"
        );
        BoundedPareto { lo, hi, alpha }
    }
}

impl Sampler for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inversion of the bounded Pareto CDF.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`, sampled by
/// inversion over a precomputed CDF (O(log n) per draw).
///
/// Used to model the Zipfian popularity of Web-Search terms (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "invalid exponent: {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n` (smaller ranks are more likely).
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) + 1,
        }
    }
}

impl Sampler for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Degenerate distribution that always returns the same value. Useful for
/// deterministic tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Sampler for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(s: &dyn Sampler, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(4.0);
        let m = mean_of(&d, 200_000, 1);
        assert!((m - 0.25).abs() < 0.005, "mean {m}");
    }

    #[test]
    fn exponential_nonnegative() {
        let d = Exponential::new(0.5);
        let mut rng = SimRng::seed(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let mut rng = SimRng::seed(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_parameterization() {
        let d = LogNormal::from_median(5.0, 1.0);
        let mut rng = SimRng::seed(4);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!((median - 5.0).abs() < 0.2, "median {median}");
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = LogNormal::new(0.0, 0.5);
        let analytic = (0.125f64).exp();
        let m = mean_of(&d, 300_000, 5);
        assert!((m - analytic).abs() < 0.01, "mean {m} vs {analytic}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1.0, 100.0, 1.5);
        let mut rng = SimRng::seed(6);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x), "{x} out of bounds");
        }
    }

    #[test]
    fn zipf_rank_one_most_popular() {
        let d = Zipf::new(1000, 1.0);
        let mut rng = SimRng::seed(7);
        let mut counts = vec![0usize; 1001];
        for _ in 0..100_000 {
            counts[d.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // Roughly 1/H(1000) ≈ 13% of mass on rank 1 for s=1.
        assert!(counts[1] > 100_000 / 10);
    }

    #[test]
    fn zipf_single_rank() {
        let d = Zipf::new(1, 1.2);
        let mut rng = SimRng::seed(8);
        assert_eq!(d.sample_rank(&mut rng), 1);
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(3.5);
        let mut rng = SimRng::seed(9);
        assert_eq!(d.sample(&mut rng), 3.5);
        assert_eq!(d.sample(&mut rng), 3.5);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }
}
