//! Reconfiguration costs and shared-resource contention.
//!
//! §3.6 of the paper: responsiveness is bounded by "the computation latency
//! in migrating cores and setting DVFS" and the QoS reaction time; Kasture
//! et al. (cited in §2) note that core transitions are far more costly than
//! DVFS changes — milliseconds versus microseconds. These parameters are
//! what make policy oscillation (Octopus-Man bouncing between 2B and 4S)
//! hurt tail latency in the reproduction, exactly as in Figure 5.

/// Costs charged when the task manager changes the machine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigCosts {
    /// Service stall when the core mapping changes (thread migration,
    /// `sched_setaffinity`), seconds. Order of milliseconds.
    pub core_migration_stall_s: f64,
    /// Service stall when only DVFS changes (`acpi-cpufreq` transition),
    /// seconds. Order of microseconds to a fraction of a millisecond.
    pub dvfs_stall_s: f64,
    /// Service-time multiplier applied for one monitoring interval after a
    /// core-mapping change (cold caches on the destination cores). 1.0
    /// disables the effect.
    pub cold_cache_penalty: f64,
}

impl ReconfigCosts {
    /// Default calibration: 30 ms migration stall, 0.2 ms DVFS stall, 15%
    /// cold-cache penalty for one interval.
    pub fn juno_defaults() -> Self {
        ReconfigCosts {
            core_migration_stall_s: 0.030,
            dvfs_stall_s: 0.0002,
            cold_cache_penalty: 1.15,
        }
    }

    /// Zero-cost reconfiguration — the ablation of §5 of DESIGN.md (shows
    /// why oscillation matters).
    pub fn free() -> Self {
        ReconfigCosts {
            core_migration_stall_s: 0.0,
            dvfs_stall_s: 0.0,
            cold_cache_penalty: 1.0,
        }
    }
}

impl Default for ReconfigCosts {
    fn default() -> Self {
        Self::juno_defaults()
    }
}

/// Shared-resource contention between the latency-critical workload and
/// collocated batch jobs.
///
/// The paper (§3.5, corroborating Heracles): "collocating both
/// latency-critical and batch workloads degrades QoS at higher loads due to
/// shared resource contention". The model inflates LC service times by
///
/// ```text
/// slowdown = 1 + same_cluster_per_batch_core · (batch cores on LC clusters)
///              + global_per_batch_core       · (all batch cores)
/// ```
///
/// capturing L2 sharing within a cluster and DRAM-bandwidth sharing across
/// the chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    /// LC slowdown per batch core sharing an LC cluster's L2.
    pub same_cluster_per_batch_core: f64,
    /// LC slowdown per batch core anywhere on the chip (memory bandwidth).
    pub global_per_batch_core: f64,
}

impl ContentionModel {
    /// Default calibration: 4% per L2-sharing batch core, 1.5% per batch
    /// core chip-wide.
    pub fn juno_defaults() -> Self {
        ContentionModel {
            same_cluster_per_batch_core: 0.04,
            global_per_batch_core: 0.015,
        }
    }

    /// No contention (isolated clusters — an idealization).
    pub fn none() -> Self {
        ContentionModel {
            same_cluster_per_batch_core: 0.0,
            global_per_batch_core: 0.0,
        }
    }

    /// The LC service slowdown factor (≥ 1).
    pub fn lc_slowdown(&self, batch_on_lc_clusters: usize, batch_total: usize) -> f64 {
        1.0 + self.same_cluster_per_batch_core * batch_on_lc_clusters as f64
            + self.global_per_batch_core * batch_total as f64
    }
}

impl Default for ContentionModel {
    fn default() -> Self {
        Self::juno_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_costlier_than_dvfs() {
        let c = ReconfigCosts::juno_defaults();
        assert!(c.core_migration_stall_s > 10.0 * c.dvfs_stall_s);
    }

    #[test]
    fn free_costs_are_zero() {
        let c = ReconfigCosts::free();
        assert_eq!(c.core_migration_stall_s, 0.0);
        assert_eq!(c.dvfs_stall_s, 0.0);
        assert_eq!(c.cold_cache_penalty, 1.0);
    }

    #[test]
    fn contention_slowdown_composition() {
        let c = ContentionModel {
            same_cluster_per_batch_core: 0.1,
            global_per_batch_core: 0.01,
        };
        assert_eq!(c.lc_slowdown(0, 0), 1.0);
        let s = c.lc_slowdown(2, 4);
        assert!((s - 1.24).abs() < 1e-12);
    }

    #[test]
    fn none_is_identity() {
        let c = ContentionModel::none();
        assert_eq!(c.lc_slowdown(4, 6), 1.0);
    }
}
