//! Failure-domain topology: nodes nest in racks, racks nest in zones.
//!
//! Real clusters fail in *correlated* waves — a rack PDU trip or a
//! spot-market reclamation takes out a whole failure domain at once, not
//! one server at a time. A [`TopologySpec`] gives every node a (zone,
//! rack) address so the fault layer can schedule domain-level episodes
//! ([`WavePlan`](crate::WavePlan)) and the cluster dispatcher can steer
//! work toward surviving domains.
//!
//! The mapping is purely arithmetic — node `i` lives in rack
//! `i / nodes_per_rack` and zone `rack / racks_per_zone` — so a topology
//! is `Copy`, allocation-free, and trivially reproducible.

use std::fmt;

/// Why a [`TopologySpec`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A topology level (zones, racks per zone, nodes per rack) was zero.
    ZeroLevel {
        /// Which level was zero.
        level: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroLevel { level } => {
                write!(f, "topology needs at least one {level}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A three-level failure-domain tree: `zones × racks_per_zone ×
/// nodes_per_rack` nodes, addressed contiguously (node 0 is zone 0 /
/// rack 0; the last node is in the last rack of the last zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologySpec {
    zones: usize,
    racks_per_zone: usize,
    nodes_per_rack: usize,
}

impl TopologySpec {
    /// A topology of `zones` zones, each holding `racks_per_zone` racks
    /// of `nodes_per_rack` nodes.
    pub fn new(
        zones: usize,
        racks_per_zone: usize,
        nodes_per_rack: usize,
    ) -> Result<Self, TopologyError> {
        for (level, n) in [
            ("zone", zones),
            ("rack per zone", racks_per_zone),
            ("node per rack", nodes_per_rack),
        ] {
            if n == 0 {
                return Err(TopologyError::ZeroLevel { level });
            }
        }
        Ok(TopologySpec {
            zones,
            racks_per_zone,
            nodes_per_rack,
        })
    }

    /// A degenerate single-zone, single-rack topology holding `nodes`
    /// nodes — correlated waves then behave like machine-wide outages.
    pub fn flat(nodes: usize) -> Result<Self, TopologyError> {
        TopologySpec::new(1, 1, nodes)
    }

    /// Total node count (`zones × racks_per_zone × nodes_per_rack`).
    pub fn nodes(&self) -> usize {
        self.zones * self.racks_per_zone * self.nodes_per_rack
    }

    /// Number of zones.
    pub fn num_zones(&self) -> usize {
        self.zones
    }

    /// Number of racks across all zones.
    pub fn num_racks(&self) -> usize {
        self.zones * self.racks_per_zone
    }

    /// Nodes per rack.
    pub fn nodes_per_rack(&self) -> usize {
        self.nodes_per_rack
    }

    /// The global rack index of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology.
    pub fn rack_of(&self, node: usize) -> usize {
        assert!(node < self.nodes(), "node {node} outside topology");
        node / self.nodes_per_rack
    }

    /// The zone index of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the topology.
    pub fn zone_of(&self, node: usize) -> usize {
        self.rack_of(node) / self.racks_per_zone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_is_contiguous_blocks() {
        let t = TopologySpec::new(2, 3, 4).unwrap();
        assert_eq!(t.nodes(), 24);
        assert_eq!(t.num_zones(), 2);
        assert_eq!(t.num_racks(), 6);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(3), 0);
        assert_eq!(t.rack_of(4), 1);
        assert_eq!(t.rack_of(23), 5);
        assert_eq!(t.zone_of(0), 0);
        assert_eq!(t.zone_of(11), 0);
        assert_eq!(t.zone_of(12), 1);
        assert_eq!(t.zone_of(23), 1);
    }

    #[test]
    fn flat_topology_is_one_domain() {
        let t = TopologySpec::flat(7).unwrap();
        assert_eq!(t.nodes(), 7);
        assert_eq!(t.num_racks(), 1);
        for node in 0..7 {
            assert_eq!(t.zone_of(node), 0);
            assert_eq!(t.rack_of(node), 0);
        }
    }

    #[test]
    fn zero_levels_are_typed_errors() {
        assert_eq!(
            TopologySpec::new(0, 1, 1),
            Err(TopologyError::ZeroLevel { level: "zone" })
        );
        assert!(TopologySpec::new(1, 0, 1).is_err());
        assert!(TopologySpec::new(1, 1, 0).is_err());
        assert!(TopologySpec::flat(0).is_err());
        assert!(TopologyError::ZeroLevel { level: "zone" }
            .to_string()
            .contains("zone"));
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_node_panics() {
        TopologySpec::new(1, 1, 2).unwrap().rack_of(2);
    }
}
