//! Model traits implemented by the `hipster-workloads` crate.

use hipster_platform::{CoreKind, Frequency};

use crate::request::{Demand, QosTarget};
use crate::rng::SimRng;

/// A latency-critical service model (Memcached, Web-Search, …).
///
/// The model owns three things the simulator needs:
/// 1. the QoS contract (Table 1: max load and tail-latency target),
/// 2. the per-request service demand distribution, and
/// 3. how fast each core class retires the demand's compute part at a given
///    frequency (`service_speed`, in work units per second).
pub trait LcModel: std::fmt::Debug + Send {
    /// Workload name as the paper spells it (e.g. `Memcached`).
    fn name(&self) -> &str;

    /// Maximum load in requests (queries) per second — the 100% point of
    /// all load percentages. Table 1 defines it as the highest load the
    /// platform sustains within the tail target on both big cores at
    /// maximum DVFS.
    fn max_load_rps(&self) -> f64;

    /// The tail-latency QoS target.
    fn qos(&self) -> QosTarget;

    /// Draws the demand of one request.
    fn sample_demand(&self, rng: &mut SimRng) -> Demand;

    /// Compute speed of one core of `kind` at `freq`, in work units/second.
    fn service_speed(&self, kind: CoreKind, freq: Frequency) -> f64;

    /// Draws the number of requests arriving together at one arrival event.
    ///
    /// Services like Memcached receive multiget batches, which makes
    /// arrivals bursty and fattens the waiting-time tail well before full
    /// saturation; the default is a single request per arrival.
    ///
    /// Implementations must keep [`LcModel::mean_burst`] consistent with
    /// this distribution — the engine divides the arrival-event rate by the
    /// mean burst size so the *request* rate matches the offered load.
    fn sample_burst(&self, _rng: &mut SimRng) -> usize {
        1
    }

    /// Mean of [`LcModel::sample_burst`]; must be ≥ 1.
    fn mean_burst(&self) -> f64 {
        1.0
    }

    /// Client-side request timeout, seconds, or `None` for patient clients.
    ///
    /// Real Memcached clients abandon requests after a deadline; under deep
    /// overload this bounds the queue instead of letting latencies grow
    /// without limit. Timed-out requests are dropped at dispatch time and
    /// recorded as right-censored latencies (at the timeout value), so QoS
    /// accounting still sees them as violations.
    fn timeout_s(&self) -> Option<f64> {
        None
    }

    /// Closed-loop load generation parameters, or `None` for open-loop
    /// Poisson arrivals.
    ///
    /// The paper's Faban generator drives Web-Search closed-loop with a 2 s
    /// think time (Table 1): a population of emulated clients submit a
    /// query, wait for the response, think, and repeat. Closed loops bound
    /// the number of in-flight requests, which is what keeps the real
    /// system's tail latency from diverging during transient overload.
    fn closed_loop(&self) -> Option<ClosedLoop> {
        None
    }
}

/// Closed-loop client population parameters (see [`LcModel::closed_loop`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoop {
    /// Client population at 100% load; the offered fraction scales it.
    pub max_clients: usize,
    /// Mean think time between receiving a response and the next request,
    /// seconds (exponentially distributed).
    pub think_mean_s: f64,
}

/// A time-varying offered-load signal, as a fraction of
/// [`LcModel::max_load_rps`].
pub trait LoadPattern: std::fmt::Debug + Send {
    /// Offered load fraction at time `t` seconds (usually in `[0, 1]`).
    fn load_at(&self, t: f64) -> f64;

    /// Natural duration of the pattern in seconds (experiments usually run
    /// exactly this long).
    fn duration(&self) -> f64;
}

/// A throughput-oriented batch program (SPEC CPU2006-style).
///
/// HipsterCo only observes batch programs through per-core instruction
/// counters, so the model is exactly an IPS function of core kind and
/// frequency.
pub trait BatchProgram: std::fmt::Debug + Send {
    /// Program name (e.g. `calculix`).
    fn name(&self) -> &str;

    /// Sustained instructions per second on one core of `kind` at `freq`.
    fn ips(&self, kind: CoreKind, freq: Frequency) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The traits must be object-safe: the engine stores them boxed.
    #[test]
    fn traits_are_object_safe() {
        fn _lc(_: &dyn LcModel) {}
        fn _load(_: &dyn LoadPattern) {}
        fn _batch(_: &dyn BatchProgram) {}
    }
}
