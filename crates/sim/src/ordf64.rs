//! A totally ordered `f64` newtype for heap keys.

use std::cmp::Ordering;

/// An `f64` ordered by [`f64::total_cmp`], so it can serve as (part of) a
/// `BinaryHeap` key. Deriving `Ord` on a struct whose first field is a
/// `TotalF64` yields the lexicographic order the event heaps rely on.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TotalF64(pub f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_on_floats() {
        let mut xs = [TotalF64(2.0), TotalF64(-1.0), TotalF64(0.5)];
        xs.sort();
        assert_eq!(xs[0].0, -1.0);
        assert_eq!(xs[2].0, 2.0);
        assert!(TotalF64(-0.0) < TotalF64(0.0));
        assert!(TotalF64(1.0) == TotalF64(1.0));
    }

    #[test]
    fn lexicographic_derives_compose() {
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct Key(TotalF64, usize);
        assert!(Key(TotalF64(1.0), 5) < Key(TotalF64(2.0), 0));
        assert!(Key(TotalF64(1.0), 0) < Key(TotalF64(1.0), 1));
    }
}
