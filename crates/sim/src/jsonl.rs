//! JSON-lines serialization of [`IntervalStats`] — the wire format of the
//! `JsonLinesSink` telemetry sink.
//!
//! One flat JSON object per monitoring interval, one interval per line.
//! Numbers are written with Rust's shortest-round-trip `f64` formatting,
//! so `parse → serialize` reproduces the original line byte for byte; the
//! reverse direction (`serialize → parse`) recovers every field exactly.
//! The module carries its own minimal parser because the build environment
//! vendors no JSON dependency — the grammar is restricted to what
//! [`interval_to_jsonl`] emits (flat objects of numbers, booleans and
//! number arrays).

use hipster_platform::{CoreConfig, Frequency, PowerBreakdown};

use crate::engine::{IntervalStats, MachineConfig};

/// Serializes one interval as a single JSON line (no trailing newline).
///
/// Key order is fixed, so equal stats always produce identical bytes.
/// Non-finite numbers (which the engine never produces, but a custom model
/// could) serialize as `null` and parse back as NaN, keeping every emitted
/// line valid JSON.
pub fn interval_to_jsonl(s: &IntervalStats) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    push_num(&mut out, "index", s.index as f64);
    push_num(&mut out, "start_s", s.start_s);
    push_num(&mut out, "duration_s", s.duration_s);
    push_num(&mut out, "n_big", s.config.lc.n_big as f64);
    push_num(&mut out, "n_small", s.config.lc.n_small as f64);
    push_num(
        &mut out,
        "lc_big_mhz",
        f64::from(s.config.lc.big_freq.as_mhz()),
    );
    push_num(
        &mut out,
        "lc_small_mhz",
        f64::from(s.config.lc.small_freq.as_mhz()),
    );
    push_num(&mut out, "big_mhz", f64::from(s.config.big_freq.as_mhz()));
    push_num(
        &mut out,
        "small_mhz",
        f64::from(s.config.small_freq.as_mhz()),
    );
    push_bool(&mut out, "batch_enabled", s.config.batch_enabled);
    push_num(&mut out, "offered_load_frac", s.offered_load_frac);
    push_num(&mut out, "offered_rps", s.offered_rps);
    push_num(&mut out, "arrivals", s.arrivals as f64);
    push_num(&mut out, "completions", s.completions as f64);
    push_num(&mut out, "timeouts", s.timeouts as f64);
    push_num(&mut out, "throughput_rps", s.throughput_rps);
    push_num(&mut out, "tail_latency_s", s.tail_latency_s);
    push_num(&mut out, "mean_latency_s", s.mean_latency_s);
    push_num(&mut out, "queue_len", s.queue_len as f64);
    push_arr(&mut out, "lc_busy", &s.lc_busy);
    push_num(&mut out, "power_big", s.power.big);
    push_num(&mut out, "power_small", s.power.small);
    push_num(&mut out, "power_rest", s.power.rest);
    push_num(&mut out, "energy_j", s.energy_j);
    push_num(&mut out, "batch_ips_big", s.batch_ips_big);
    push_num(&mut out, "batch_ips_small", s.batch_ips_small);
    push_bool(&mut out, "counters_valid", s.counters_valid);
    push_num(&mut out, "migrated_cores", s.migrated_cores as f64);
    // Strip the trailing comma.
    out.pop();
    out.push('}');
    out
}

/// Parses a line produced by [`interval_to_jsonl`] back into stats.
///
/// Returns `None` on malformed JSON, a missing field, or a value of the
/// wrong type — never panics.
pub fn interval_from_jsonl(line: &str) -> Option<IntervalStats> {
    let fields = parse_flat_object(line)?;
    let num = |k: &str| -> Option<f64> {
        fields
            .iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| match v {
                JsonValue::Num(x) => Some(*x),
                _ => None,
            })
    };
    let boolean = |k: &str| -> Option<bool> {
        fields
            .iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| match v {
                JsonValue::Bool(b) => Some(*b),
                _ => None,
            })
    };
    let arr = |k: &str| -> Option<Vec<f64>> {
        fields
            .iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| match v {
                JsonValue::Arr(xs) => Some(xs.clone()),
                _ => None,
            })
    };
    let as_usize = |x: f64| -> Option<usize> {
        (x.is_finite() && x >= 0.0 && x.fract() == 0.0).then_some(x as usize)
    };
    let mhz = |k: &str| -> Option<Frequency> {
        let x = num(k)?;
        (x.is_finite() && x >= 0.0 && x <= f64::from(u32::MAX))
            .then(|| Frequency::from_mhz(x as u32))
    };

    let lc = CoreConfig::new(
        as_usize(num("n_big")?)?,
        as_usize(num("n_small")?)?,
        mhz("lc_big_mhz")?,
        mhz("lc_small_mhz")?,
    );
    Some(IntervalStats {
        index: as_usize(num("index")?)? as u64,
        start_s: num("start_s")?,
        duration_s: num("duration_s")?,
        config: MachineConfig {
            lc,
            big_freq: mhz("big_mhz")?,
            small_freq: mhz("small_mhz")?,
            batch_enabled: boolean("batch_enabled")?,
        },
        offered_load_frac: num("offered_load_frac")?,
        offered_rps: num("offered_rps")?,
        arrivals: as_usize(num("arrivals")?)?,
        completions: as_usize(num("completions")?)?,
        timeouts: as_usize(num("timeouts")?)?,
        throughput_rps: num("throughput_rps")?,
        tail_latency_s: num("tail_latency_s")?,
        mean_latency_s: num("mean_latency_s")?,
        queue_len: as_usize(num("queue_len")?)?,
        lc_busy: arr("lc_busy")?,
        power: PowerBreakdown {
            big: num("power_big")?,
            small: num("power_small")?,
            rest: num("power_rest")?,
        },
        energy_j: num("energy_j")?,
        batch_ips_big: num("batch_ips_big")?,
        batch_ips_small: num("batch_ips_small")?,
        counters_valid: boolean("counters_valid")?,
        migrated_cores: as_usize(num("migrated_cores")?)?,
    })
}

fn push_num(out: &mut String, key: &str, v: f64) {
    use std::fmt::Write as _;
    // Display would print `NaN`/`inf`, which is not JSON; non-finite
    // values (never produced by the engine, but possible from custom
    // models) serialize as `null` and parse back as NaN.
    if v.is_finite() {
        let _ = write!(out, "\"{key}\":{v},");
    } else {
        let _ = write!(out, "\"{key}\":null,");
    }
}

fn push_bool(out: &mut String, key: &str, v: bool) {
    use std::fmt::Write as _;
    let _ = write!(out, "\"{key}\":{v},");
}

fn push_arr(out: &mut String, key: &str, vs: &[f64]) {
    use std::fmt::Write as _;
    let _ = write!(out, "\"{key}\":[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            let _ = write!(out, "{v}");
        } else {
            out.push_str("null");
        }
    }
    out.push_str("],");
}

/// A parsed JSON value in the flat-object grammar the sink emits.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Num(f64),
    Bool(bool),
    Arr(Vec<f64>),
}

/// Parses `{"key":value,...}` where values are numbers, booleans or arrays
/// of numbers. Whitespace between tokens is tolerated.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
    }
    p.skip_ws();
    (p.pos == p.bytes.len()).then_some(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        (self.next_byte()? == b).then_some(())
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let start = self.pos;
        // Keys never contain escapes in this grammar.
        while self.peek()? != b'"' {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .to_owned();
        self.pos += 1;
        Some(s)
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        if self.peek() == Some(b'n') {
            let end = self.pos + 4;
            if self.bytes.get(self.pos..end) == Some(b"null".as_slice()) {
                self.pos = end;
                return Some(f64::NAN);
            }
            return None;
        }
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.peek()? {
            b't' | b'f' => {
                let want: &[u8] = if self.peek() == Some(b't') {
                    b"true"
                } else {
                    b"false"
                };
                let end = self.pos + want.len();
                if self.bytes.get(self.pos..end) == Some(want) {
                    self.pos = end;
                    Some(JsonValue::Bool(want == b"true"))
                } else {
                    None
                }
            }
            b'[' => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Some(JsonValue::Arr(xs));
                }
                loop {
                    xs.push(self.number()?);
                    self.skip_ws();
                    match self.next_byte()? {
                        b',' => continue,
                        b']' => break,
                        _ => return None,
                    }
                }
                Some(JsonValue::Arr(xs))
            }
            _ => Some(JsonValue::Num(self.number()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tail_ms: f64) -> IntervalStats {
        let f = Frequency::from_mhz(1150);
        let fs = Frequency::from_mhz(650);
        IntervalStats {
            index: 7,
            start_s: 7.0,
            duration_s: 1.0,
            config: MachineConfig {
                lc: CoreConfig::new(2, 1, f, fs),
                big_freq: f,
                small_freq: fs,
                batch_enabled: true,
            },
            offered_load_frac: 0.51234,
            offered_rps: 18_444.2,
            arrivals: 18_551,
            completions: 18_490,
            timeouts: 3,
            throughput_rps: 18_490.0,
            tail_latency_s: tail_ms / 1e3,
            mean_latency_s: tail_ms / 2.7e3,
            queue_len: 12,
            lc_busy: vec![0.81, 0.79, 0.33],
            power: PowerBreakdown {
                big: 1.701,
                small: 0.42,
                rest: 1.2,
            },
            energy_j: 3.321,
            batch_ips_big: 2.0e9,
            batch_ips_small: 8.25e8,
            counters_valid: false,
            migrated_cores: 1,
        }
    }

    #[test]
    fn round_trip_recovers_every_field() {
        let s = sample(9.87654321);
        let line = interval_to_jsonl(&s);
        let back = interval_from_jsonl(&line).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn reserialization_is_byte_identical() {
        let s = sample(3.14159);
        let line = interval_to_jsonl(&s);
        let again = interval_to_jsonl(&interval_from_jsonl(&line).unwrap());
        assert_eq!(line, again);
    }

    #[test]
    fn line_is_single_flat_json_object() {
        let line = interval_to_jsonl(&sample(1.0));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"tail_latency_s\":"));
        assert!(line.contains("\"counters_valid\":false"));
    }

    #[test]
    fn malformed_lines_return_none() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"index\":}",
            "{\"index\":1}",                        // missing fields
            "{\"index\":\"one\"}",                  // unsupported string value
            "[1,2,3]",                              // not an object
            "{\"index\":1,\"start_s\":0.0,} extra", // trailing garbage
        ] {
            assert!(interval_from_jsonl(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn non_finite_values_stay_valid_json() {
        let mut s = sample(1.0);
        s.offered_rps = f64::INFINITY;
        s.tail_latency_s = f64::NAN;
        s.lc_busy[1] = f64::NAN;
        let line = interval_to_jsonl(&s);
        assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        assert!(line.contains("\"offered_rps\":null"));
        let back = interval_from_jsonl(&line).expect("null parses");
        assert!(back.offered_rps.is_nan());
        assert!(back.tail_latency_s.is_nan());
        // Byte-identical re-serialization still holds (null -> NaN -> null).
        assert_eq!(interval_to_jsonl(&back), line);
    }

    #[test]
    fn tolerates_whitespace() {
        let line = interval_to_jsonl(&sample(2.0))
            .replace(":", ": ")
            .replace(",\"", ", \"");
        assert_eq!(interval_from_jsonl(&line), Some(sample(2.0)));
    }
}
