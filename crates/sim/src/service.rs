//! The latency-critical service node: a FIFO queue feeding a set of
//! heterogeneous core-servers.
//!
//! Requests arrive into a central FIFO queue and are dispatched to the
//! fastest idle server (requests cannot span cores). Service has two
//! sequential phases — a compute phase retired at the server's
//! frequency-dependent speed and a memory phase that is
//! frequency-insensitive — and both stretch under a contention slowdown
//! while batch jobs share the machine.
//!
//! Reconfigurations preempt in-flight requests (for core-mapping changes)
//! or rescale them (for pure DVFS changes), charging the corresponding
//! stall; this is how the paper's observation that "core-transitions are
//! far more costly relative to DVFS changes" enters the model.
//!
//! # Event-count scalability
//!
//! The node is indexed so per-event dispatch cost is flat in the server
//! count:
//!
//! * pending completions live in a [`CalendarQueue`] of `(finish, server)`
//!   events — finding and retiring the earliest completion is an O(1)
//!   amortized bucket pop (PR 6; previously an O(log n) heap pop, and
//!   before that a scan plus a float-equality re-scan);
//! * free servers live in **speed-class bitmap free lists**
//!   (`freelist.rs`): a small table of distinct effective speeds
//!   (`speed / slowdown`), rebuilt only when a reconfiguration changes the
//!   speed sequence, where each class keeps a two-level u64 bitset of its
//!   free members — `dispatch` is "first non-empty class, find set bit" in
//!   O(1), and servers still inside a reconfiguration stall wait in
//!   parallel stalled bitmaps that are promoted by a word-wise merge when
//!   the stall elapses;
//! * the in-flight count is tracked incrementally, and interval-boundary
//!   busy accounting walks the pending-completion entries (the busy
//!   servers) rather than every server.
//!
//! Tie-breaking reproduces the order the free-server max-heap (and the
//! linear scans before it) produced — completions: lowest server index
//! first; dispatch: fastest effective speed, ties toward the highest
//! server index via leading-bit selection — so traces are bit-identical to
//! both predecessors, property-tested against the frozen copies in
//! [`crate::reference`] (`ReferenceNode`: pre-PR3 scans; `HeapNode`:
//! PR 3/4-era heaps; `PackedHeapNode`: the PR 5 node around the frozen
//! packed-`u128` completion heap).
//!
//! The node body is written once as [`QueuedNode`], generic over the
//! [`CompletionQueue`] implementation; [`ServiceNode`] is the production
//! instantiation over the calendar queue, and the reference node over the
//! frozen heap shares every other line of code.

use std::collections::VecDeque;

use hipster_platform::{CoreKind, Frequency};

use crate::calendar::CalendarQueue;
use crate::completion::CompletionQueue;
use crate::freelist::SpeedClassFreeList;
use crate::latency::LatencyRecorder;
use crate::request::{Demand, Request, RequestId};

/// Specification of one server (one core allocated to the LC workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSpec {
    /// Core class backing this server.
    pub kind: CoreKind,
    /// Cluster frequency of that core.
    pub freq: Frequency,
    /// Compute speed in work units per second at that frequency.
    pub speed: f64,
    /// Service-time multiplier ≥ 1 from contention / cold caches.
    pub slowdown: f64,
}

/// Per-server state the steady-state event path touches, 32 bytes — two
/// servers per cache line. Retiring a completion reads and writes only
/// this record (plus the free-list bit); the in-flight request's arrival
/// and start are flattened in (`repr(C)` pins the layout).
///
/// There is deliberately no "busy" flag and no stored finish time: **the
/// pending-completion queue is the busy set** — a server is in flight iff
/// it has a queue entry, and that entry carries the finish time. Cold
/// paths (preemption, DVFS rescale, the oldest-age fallback) iterate the
/// queue's entries instead of sweeping every server.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct HotServer {
    /// Earliest time this server may start (end of a reconfiguration
    /// stall; its completion time while idle).
    available_at: f64,
    /// Arrival time of the in-flight request (valid while busy).
    arrival: f64,
    /// When the current execution (re)started (valid while busy).
    started: f64,
    busy_in_interval: f64,
}

/// Per-server service rate, read by dispatch only (four per cache line).
#[derive(Debug, Clone, Copy, Default)]
struct Rate {
    /// Compute speed of the backing core (work units per second).
    speed: f64,
    /// Contention slowdown ≥ 1.
    slowdown: f64,
}

impl Rate {
    fn service_time(&self, req: &Request) -> f64 {
        (req.work_left / self.speed + req.mem_left) * self.slowdown
    }
}

/// Per-server state only reconfigurations touch (dispatch writes the
/// in-flight demand here without ever reading it back on the hot path).
#[derive(Debug, Clone, Copy, Default)]
struct ColdServer {
    /// Remaining compute demand of the in-flight request.
    work_left: f64,
    /// Remaining memory demand of the in-flight request.
    mem_left: f64,
    /// Id of the in-flight request (preemption requeues in id order).
    id: u64,
}

/// Statistics of one completed monitoring interval of the service node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInterval {
    /// Requests that arrived during the interval.
    pub arrivals: usize,
    /// Requests that completed during the interval.
    pub completions: usize,
    /// Requests whose clients timed out during the interval.
    pub timeouts: usize,
    /// Tail latency at the requested percentile, seconds.
    ///
    /// When no request completed, this falls back to the age of the oldest
    /// request still in the system (a lower bound on its eventual latency),
    /// or 0 when the system is empty.
    pub tail_latency_s: f64,
    /// Mean latency of completed requests (0 when none completed).
    pub mean_latency_s: f64,
    /// Per-server busy fraction during the interval.
    pub busy: Vec<f64>,
    /// Queue length at the end of the interval (excluding in-flight).
    pub queue_len: usize,
}

/// FIFO multi-server queueing node for the latency-critical workload,
/// generic over its pending-completion index `Q`.
///
/// Indexed for event-count scalability: pending completions in a
/// `(finish, server)` min-queue (the production [`CalendarQueue`]: O(1)
/// amortized), free servers in speed-class bitmap free lists (O(1)
/// dispatch — `freelist.rs`) and an incremental in-flight count, with
/// tie-breaking that reproduces the PR 5 packed heap, the PR 3/4-era
/// heaps, and the original linear scans bit-for-bit (see
/// [`crate::reference`]).
#[derive(Debug, Clone)]
pub struct QueuedNode<Q: CompletionQueue> {
    queue: VecDeque<Request>,
    /// Hot per-server records (see [`HotServer`]).
    hot: Vec<HotServer>,
    /// Per-server service rates (dispatch read path).
    rate: Vec<Rate>,
    /// Cold per-server records (reconfiguration paths).
    cold: Vec<ColdServer>,
    /// Per-server effective speed, `speed / slowdown` (the speed-class
    /// key; read only by the free-list rebuild).
    eff: Vec<f64>,
    /// Min-queue of pending completions, one entry per busy server.
    /// Entries are never stale: reconfigurations rebuild the queue and
    /// completions pop their own entry.
    completions: Q,
    /// Free servers bucketed by effective speed: per-class two-level
    /// bitmaps of dispatchable servers, plus parallel stalled bitmaps for
    /// servers parked inside a reconfiguration stall. Reconfigurations park
    /// every idle server stalled, and dispatch demotes popped servers whose
    /// stall has not elapsed at its (non-monotonic) timestamp; the first
    /// dispatch with a non-empty queue promotes the eligible ones (usually
    /// one word-wise merge), so on the steady-state hot path the emptiness
    /// check is all that runs.
    free: SpeedClassFreeList,
    recorder: LatencyRecorder,
    /// Reused buffer for preempted in-flight requests (no allocation per
    /// reconfiguration once warm).
    preempt_scratch: Vec<Request>,
    /// Reused buffer for the completion-heap drain/rebuild at
    /// reconfiguration (heapified in O(n) rather than pushed in
    /// O(n log n)).
    completion_scratch: Vec<(f64, usize)>,
    /// Reused busy-membership scratch for the free-list rebuild.
    busy_scratch: Vec<bool>,
    /// Reused pending-set drain buffer for preemption.
    preempt_drain_scratch: Vec<(f64, usize)>,
    /// Set when every server shares one bit-identical `(speed, slowdown)`
    /// pair — the common at-scale case (a homogeneous allocation at one
    /// DVFS point) — letting dispatch skip the per-server rate load.
    uniform_rate: Option<Rate>,
    next_id: u64,
    interval_start: f64,
    interval_arrivals: usize,
    interval_completions: usize,
    interval_timeouts: usize,
    total_completed: u64,
    /// Client-side request timeout; timed-out requests are dropped at
    /// dispatch and recorded as right-censored latencies.
    timeout_s: Option<f64>,
}

/// The production service node: [`QueuedNode`] over the O(1) amortized
/// [`CalendarQueue`] completion index.
pub type ServiceNode = QueuedNode<CalendarQueue>;

impl<Q: CompletionQueue> QueuedNode<Q> {
    /// Creates a node with no servers (configure before use).
    pub fn new() -> Self {
        QueuedNode {
            queue: VecDeque::new(),
            hot: Vec::new(),
            rate: Vec::new(),
            cold: Vec::new(),
            eff: Vec::new(),
            completions: Q::default(),
            free: SpeedClassFreeList::new(),
            recorder: LatencyRecorder::new(),
            preempt_scratch: Vec::new(),
            completion_scratch: Vec::new(),
            busy_scratch: Vec::new(),
            preempt_drain_scratch: Vec::new(),
            uniform_rate: None,
            next_id: 0,
            interval_start: 0.0,
            interval_arrivals: 0,
            interval_completions: 0,
            interval_timeouts: 0,
            total_completed: 0,
            timeout_s: None,
        }
    }

    /// Sets the client-side request timeout (`None` = patient clients).
    ///
    /// # Panics
    ///
    /// Panics if the timeout is not strictly positive.
    pub fn set_timeout(&mut self, timeout_s: Option<f64>) {
        if let Some(t) = timeout_s {
            assert!(t > 0.0, "timeout must be positive: {t}");
        }
        self.timeout_s = timeout_s;
    }

    /// Number of servers currently configured.
    pub fn num_servers(&self) -> usize {
        self.hot.len()
    }

    /// Requests waiting in the queue (excluding in-flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently being serviced (O(1): the pending-completion
    /// count *is* the busy-server count).
    pub fn in_flight(&self) -> usize {
        self.completions.len()
    }

    /// Total requests completed since construction.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Reconfigures the server set at time `now`.
    ///
    /// * `preempt` — `true` for core-mapping changes: all in-flight requests
    ///   are preempted (remaining demand preserved) and requeued in arrival
    ///   order. `false` for pure DVFS changes: in-flight requests continue
    ///   with their remaining demand rescaled to the new speed.
    /// * `stall_s` — servers may not start work before `now + stall_s`
    ///   (migration or DVFS transition latency).
    ///
    /// Rebuilds the completion queue (in O(n)) and the free-list
    /// bitmaps; the speed-class table itself is re-derived only when the
    /// per-server effective-speed sequence actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, if any spec has a non-positive speed or a
    /// slowdown below 1, or if `preempt` is `false` while the server count
    /// changes.
    pub fn reconfigure(&mut self, now: f64, specs: &[ServerSpec], preempt: bool, stall_s: f64) {
        assert!(!specs.is_empty(), "service node needs at least one server");
        for s in specs {
            assert!(s.speed > 0.0, "server speed must be positive: {s:?}");
            assert!(s.slowdown >= 1.0, "slowdown must be ≥ 1: {s:?}");
        }
        let mut busy = std::mem::take(&mut self.completion_scratch);
        if preempt {
            self.preempt_all(now);
            busy.clear(); // preemption drained the pending set
            self.hot.clear();
            self.rate.clear();
            self.cold.clear();
            self.eff.clear();
            for &spec in specs {
                self.hot.push(HotServer {
                    available_at: now + stall_s,
                    ..HotServer::default()
                });
                self.rate.push(Rate {
                    speed: spec.speed,
                    slowdown: spec.slowdown,
                });
                self.cold.push(ColdServer::default());
                self.eff.push(spec.speed / spec.slowdown);
            }
        } else {
            assert_eq!(
                specs.len(),
                self.hot.len(),
                "DVFS-only reconfiguration cannot change the server count"
            );
            for (i, &spec) in specs.iter().enumerate() {
                self.rate[i] = Rate {
                    speed: spec.speed,
                    slowdown: spec.slowdown,
                };
                self.eff[i] = spec.speed / spec.slowdown;
                self.hot[i].available_at = self.hot[i].available_at.max(now + stall_s);
            }
            // Rescale the in-flight requests — exactly the servers with a
            // pending completion: consume demand proportionally to elapsed
            // service time, then recompute the finish under the new spec.
            let interval_start = self.interval_start;
            self.completions.drain_unordered(&mut busy);
            for entry in &mut busy {
                let (finish, i) = *entry;
                let h = &mut self.hot[i];
                let left = remaining_fraction(h.started, finish, now);
                let c = &mut self.cold[i];
                c.work_left *= left;
                c.mem_left *= left;
                h.busy_in_interval += (now - h.started.max(interval_start)).max(0.0);
                h.started = now;
                let r = self.rate[i];
                let t = (c.work_left / r.speed + c.mem_left) * r.slowdown;
                *entry = ((now + stall_s) + t, i);
            }
        }
        let first = specs[0];
        self.uniform_rate = specs
            .iter()
            .all(|sp| {
                sp.speed.to_bits() == first.speed.to_bits()
                    && sp.slowdown.to_bits() == first.slowdown.to_bits()
            })
            .then_some(Rate {
                speed: first.speed,
                slowdown: first.slowdown,
            });
        self.rebuild_index(&mut busy);
        self.completion_scratch = busy;
        self.dispatch(now + stall_s);
    }

    /// Revokes every server at time `now` — the fault-injection layer's
    /// full-revocation path ([`QueuedNode::reconfigure`] itself rejects
    /// an empty server list). In-flight requests are preempted with their
    /// remaining demand preserved and requeued in arrival order; the
    /// server set, speed-class free lists, and pending-completion queue
    /// all empty out. Arrivals keep queueing (and timed-out ones keep
    /// shedding at dispatch) until a preempting `reconfigure` brings
    /// servers back.
    pub fn revoke_all(&mut self, now: f64) {
        self.preempt_all(now);
        self.hot.clear();
        self.rate.clear();
        self.cold.clear();
        self.eff.clear();
        self.uniform_rate = None;
        let mut busy = std::mem::take(&mut self.completion_scratch);
        busy.clear();
        self.rebuild_index(&mut busy);
        self.completion_scratch = busy;
        self.dispatch(now);
    }

    /// Rebuilds the free-list bitmaps and the pending-completion queue
    /// (`busy`, drained and transformed by the caller; consumed here).
    /// Free servers all enter the stalled bitmaps; the next dispatch
    /// promotes the ones whose `available_at` has passed (one word-wise
    /// merge in the common case).
    fn rebuild_index(&mut self, busy: &mut Vec<(f64, usize)>) {
        self.free.rebuild(self.eff.iter().copied());
        let n = self.hot.len();
        self.busy_scratch.clear();
        self.busy_scratch.resize(n, false);
        for &(_, i) in busy.iter() {
            self.busy_scratch[i] = true;
        }
        for i in 0..n {
            if !self.busy_scratch[i] {
                self.free.mark_stalled(i, self.hot[i].available_at);
            }
        }
        // O(n) rebuild; pop order over distinct `(finish, server)` keys
        // is the same as for a queue built by pushes.
        self.completions.rebuild_from(busy);
    }

    fn preempt_all(&mut self, now: f64) {
        let interval_start = self.interval_start;
        let mut busy = std::mem::take(&mut self.preempt_drain_scratch);
        self.completions.drain_unordered(&mut busy);
        let mut preempted = std::mem::take(&mut self.preempt_scratch);
        preempted.clear();
        for &(finish, i) in &busy {
            let h = &mut self.hot[i];
            h.busy_in_interval += (now - h.started.max(interval_start)).max(0.0);
            let left = remaining_fraction(h.started, finish, now);
            let c = &self.cold[i];
            preempted.push(Request {
                id: RequestId(c.id),
                arrival: h.arrival,
                work_left: c.work_left * left,
                mem_left: c.mem_left * left,
            });
        }
        self.preempt_drain_scratch = busy;
        // Requeue ahead of waiting requests, preserving arrival order (ids
        // are unique, so the sort is a total order regardless of the
        // unordered drain above).
        preempted.sort_by_key(|r| r.id);
        for req in preempted.drain(..).rev() {
            self.queue.push_front(req);
        }
        self.preempt_scratch = preempted;
    }

    /// Marks the start of a monitoring interval at time `t`.
    pub fn begin_interval(&mut self, t: f64) {
        self.interval_start = t;
        self.interval_arrivals = 0;
        self.interval_completions = 0;
        self.interval_timeouts = 0;
        for h in &mut self.hot {
            h.busy_in_interval = 0.0;
        }
    }

    /// Enqueues a request arriving at `now` with the given demand, then
    /// dispatches if a server is free.
    pub fn arrive(&mut self, now: f64, demand: Demand) {
        let req = Request::new(RequestId(self.next_id), now, demand);
        self.next_id += 1;
        self.interval_arrivals += 1;
        // Fast path: nothing queued and no stall bookkeeping pending —
        // place the request directly, skipping the queue round-trip and
        // the timeout/promotion checks `dispatch` would no-op through (a
        // just-arrived request has age 0, so it can never be shed).
        if self.queue.is_empty() && !self.free.has_stalled() {
            loop {
                match self.free.pop_best() {
                    Some(idx) if self.hot[idx].available_at > now => {
                        self.free.mark_stalled(idx, self.hot[idx].available_at);
                    }
                    Some(idx) => {
                        self.start_request(idx, req, now);
                        return;
                    }
                    None => break,
                }
            }
        }
        self.queue.push_back(req);
        self.dispatch(now);
    }

    /// Earliest pending completion time, if any request is in flight (O(1):
    /// a peek at the completion queue's cached minimum).
    pub fn next_completion(&self) -> Option<f64> {
        self.completions.peek_finish()
    }

    /// Processes all completions up to and including time `to`.
    pub fn advance(&mut self, to: f64) {
        while let Some((finish, server)) = self.completions.pop_if_le(to) {
            self.complete_server(server, finish);
        }
    }

    /// Like [`QueuedNode::advance`], but appends each completion time to
    /// `out` (closed-loop generators schedule think timers from these).
    pub fn advance_collect(&mut self, to: f64, out: &mut Vec<f64>) {
        while let Some((finish, server)) = self.completions.pop_if_le(to) {
            self.complete_server(server, finish);
            out.push(finish);
        }
    }

    /// Retires the request on server `idx` at its finish time `t` (the
    /// popped completion entry), then dispatches onto the freed server.
    fn complete_server(&mut self, idx: usize, t: f64) {
        let h = &mut self.hot[idx];
        h.busy_in_interval += t - h.started.max(self.interval_start);
        h.available_at = t;
        let latency = (t - h.arrival).max(0.0);
        self.free.mark_free(idx);
        self.recorder.record(latency);
        self.interval_completions += 1;
        self.total_completed += 1;
        self.dispatch(t);
    }

    /// Dispatches queued requests to free servers (fastest server first),
    /// dropping requests whose client already timed out.
    fn dispatch(&mut self, now: f64) {
        // Shed timed-out requests from the queue head; their latency is
        // right-censored at the timeout so QoS accounting sees them. One
        // pass suffices: queued requests are in arrival order, so ages only
        // decrease toward the tail.
        if let Some(t) = self.timeout_s {
            while self.queue.front().is_some_and(|r| r.age(now) > t) {
                self.queue.pop_front();
                self.recorder.record(t);
                self.interval_timeouts += 1;
            }
        }
        if self.queue.is_empty() {
            return;
        }
        // Stalled bitmaps are only populated between a reconfiguration and
        // its kick, so this is an O(1) emptiness check on the hot path.
        if self.free.has_stalled() {
            let hot = &self.hot;
            self.free.promote(now, |i| hot[i].available_at);
        }
        while !self.queue.is_empty() {
            // Fastest free server whose stall has elapsed: the best set
            // bit. Dispatch timestamps are not monotonic — a
            // reconfiguration dispatches at `now + stall` and the event loop
            // then delivers arrivals *inside* the stall window — so a popped
            // server may still be stalled at this `now`; demote it back to
            // the stalled bitmaps (popping in (speed, index) order keeps the
            // first eligible pop the fastest eligible server).
            let Some(idx) = self.free.pop_best() else {
                return;
            };
            if self.hot[idx].available_at > now {
                self.free.mark_stalled(idx, self.hot[idx].available_at);
                continue;
            }
            let req = self.queue.pop_front().expect("queue non-empty");
            self.start_request(idx, req, now);
        }
    }

    /// Starts `req` on free, eligible server `idx` at time `now`.
    #[inline]
    fn start_request(&mut self, idx: usize, req: Request, now: f64) {
        // Same bits in either branch; the uniform fast path just avoids
        // touching the rate array.
        let service = match self.uniform_rate {
            Some(r) => r.service_time(&req),
            None => self.rate[idx].service_time(&req),
        };
        let finish = now + service;
        let h = &mut self.hot[idx];
        h.arrival = req.arrival;
        h.started = now;
        let c = &mut self.cold[idx];
        c.work_left = req.work_left;
        c.mem_left = req.mem_left;
        c.id = req.id.0;
        self.completions.push(finish, idx);
    }

    /// Called by the engine when servers stalled until `t` become free, to
    /// start work that queued during the stall.
    pub fn kick(&mut self, t: f64) {
        self.dispatch(t);
    }

    /// Closes the interval at time `t_end`, returning its statistics.
    ///
    /// The tail latency is the `p`-th percentile of completions in the
    /// interval, computed by selection rather than a full sort; see
    /// [`NodeInterval::tail_latency_s`] for the no-completion fallback. The
    /// returned [`NodeInterval::busy`] vector is the node's only
    /// per-interval allocation — it is owned by the caller's interval
    /// record, so it cannot be recycled here.
    pub fn end_interval(&mut self, t_end: f64, p: f64) -> NodeInterval {
        // Account in-flight busy time up to the interval boundary. The
        // pending-completion entries are exactly the busy servers (one
        // entry each), so this walks O(in-flight) servers, not all of them.
        let interval_start = self.interval_start;
        for i in self.completions.servers() {
            let h = &mut self.hot[i];
            h.busy_in_interval += t_end - h.started.max(interval_start);
        }
        let dur = (t_end - self.interval_start).max(f64::EPSILON);
        let busy: Vec<f64> = self
            .hot
            .iter()
            .map(|h| (h.busy_in_interval / dur).clamp(0.0, 1.0))
            .collect();
        let (tail, mean, _n) = self.recorder.take_interval(p);
        let tail = tail.unwrap_or_else(|| self.oldest_age(t_end));
        NodeInterval {
            arrivals: self.interval_arrivals,
            completions: self.interval_completions,
            timeouts: self.interval_timeouts,
            tail_latency_s: tail,
            mean_latency_s: mean.unwrap_or(0.0),
            busy,
            queue_len: self.queue.len(),
        }
    }

    /// Age of the oldest request still in the system. Only consulted when
    /// an interval ends with zero completions (a cold, near-idle or fully
    /// wedged interval), so the O(n) scan is off the hot path.
    fn oldest_age(&self, now: f64) -> f64 {
        let queued = self.queue.front().map(|r| r.age(now));
        let in_flight = self
            .completions
            .servers()
            .map(|i| (now - self.hot[i].arrival).max(0.0))
            .max_by(f64::total_cmp);
        match (queued, in_flight) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 0.0,
        }
    }
}

impl<Q: CompletionQueue> Default for QueuedNode<Q> {
    fn default() -> Self {
        Self::new()
    }
}

/// Fraction of a request's demand still outstanding when service ran
/// linearly from `started` toward `finish` and was interrupted at `now`.
fn remaining_fraction(started: f64, finish: f64, now: f64) -> f64 {
    let total = finish - started;
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - ((now - started) / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: CoreKind, speed: f64) -> ServerSpec {
        ServerSpec {
            kind,
            freq: Frequency::from_mhz(1000),
            speed,
            slowdown: 1.0,
        }
    }

    fn one_server(speed: f64) -> ServiceNode {
        let mut n = ServiceNode::new();
        n.reconfigure(0.0, &[spec(CoreKind::Big, speed)], true, 0.0);
        n.begin_interval(0.0);
        n
    }

    #[test]
    fn single_request_latency() {
        let mut n = one_server(2.0); // 2 work units/s
        n.arrive(0.0, Demand::new(1.0, 0.5)); // 0.5 s compute + 0.5 s memory
        n.advance(10.0);
        let iv = n.end_interval(10.0, 0.95);
        assert_eq!(iv.completions, 1);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
        assert!((iv.busy[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fifo_queueing_adds_wait() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(1.0, 0.0)); // served 0..1
        n.arrive(0.0, Demand::new(1.0, 0.0)); // served 1..2 → latency 2
        n.advance(5.0);
        let iv = n.end_interval(5.0, 1.0);
        assert_eq!(iv.completions, 2);
        assert!((iv.tail_latency_s - 2.0).abs() < 1e-12);
        assert!((iv.mean_latency_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fastest_server_preferred() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Small, 1.0), spec(CoreKind::Big, 4.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(4.0, 0.0)); // on big: 1 s; on small it'd be 4 s
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
        // Big (index 1) did the work.
        assert!(iv.busy[1] > 0.0 && iv.busy[0] == 0.0);
    }

    #[test]
    fn equal_speed_tie_breaks_to_highest_index() {
        // The old `max_by` scan returned the *last* maximal server; the
        // free heap must reproduce that.
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[
                spec(CoreKind::Big, 2.0),
                spec(CoreKind::Big, 2.0),
                spec(CoreKind::Big, 2.0),
            ],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(2.0, 0.0));
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(iv.busy[2] > 0.0, "highest-index server should win the tie");
        assert!(iv.busy[0] == 0.0 && iv.busy[1] == 0.0);
    }

    #[test]
    fn equal_finish_completes_lowest_index_first() {
        // Two identical servers, two identical requests submitted together:
        // both finish at the same instant; the completion heap must retire
        // server 0's request first (the old `position` scan order). The
        // third request then dispatches onto server 0.
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0)); // server 1 (tie → highest idx)
        n.arrive(0.0, Demand::new(1.0, 0.0)); // server 0
        n.arrive(0.0, Demand::new(1.0, 0.0)); // queued
        n.advance(1.0);
        assert_eq!(n.in_flight(), 1);
        let iv = n.end_interval(2.0, 1.0);
        assert_eq!(iv.completions, 2);
        // Server 0 freed first at t=1 and picked up the queued request.
        assert!((iv.busy[0] - 1.0).abs() < 1e-12, "{:?}", iv.busy);
        assert!((iv.busy[1] - 0.5).abs() < 1e-12, "{:?}", iv.busy);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.advance(1.0);
        let iv = n.end_interval(1.0, 1.0);
        assert_eq!(iv.completions, 2);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_stretches_service() {
        let mut n = ServiceNode::new();
        let mut s = spec(CoreKind::Big, 1.0);
        s.slowdown = 2.0;
        n.reconfigure(0.0, &[s], true, 0.0);
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!((iv.tail_latency_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn preemption_preserves_remaining_work() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(2.0, 0.0)); // would finish at t=2
        n.advance(1.0);
        // Remap at t=1 onto a 2× faster server with no stall: half the work
        // (1 unit) remains → 0.5 s more.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 2.0)], true, 0.0);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn migration_stall_delays_service() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        // Immediately remap with a 0.5 s stall: finish at 1.5 s.
        n.reconfigure(0.0, &[spec(CoreKind::Big, 1.0)], true, 0.5);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn arrivals_during_stall_wait_for_kick() {
        let mut n = one_server(1.0);
        // Remap with a 1 s stall, then let a request arrive mid-stall: it
        // must not start before the stall elapses.
        n.reconfigure(0.0, &[spec(CoreKind::Big, 1.0)], true, 1.0);
        n.arrive(0.5, Demand::new(1.0, 0.0));
        n.advance(0.9);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.queue_len(), 1);
        n.kick(1.0);
        assert_eq!(n.in_flight(), 1);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        // Arrived at 0.5, started at 1.0, finished at 2.0 → latency 1.5.
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn dvfs_change_rescales_in_flight() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(2.0, 0.0)); // finish at 2 under speed 1
        n.advance(1.0);
        // At t=1, double the speed without preemption: 1 unit left → 0.5 s.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 2.0)], false, 0.0);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn no_completion_falls_back_to_oldest_age() {
        let mut n = one_server(0.001); // pathologically slow
        n.arrive(0.0, Demand::new(100.0, 0.0));
        n.arrive(0.5, Demand::new(100.0, 0.0));
        n.advance(1.0);
        let iv = n.end_interval(1.0, 0.95);
        assert_eq!(iv.completions, 0);
        assert!(
            (iv.tail_latency_s - 1.0).abs() < 1e-12,
            "oldest request age"
        );
    }

    #[test]
    fn empty_system_reports_zero_tail() {
        let mut n = one_server(1.0);
        n.advance(1.0);
        let iv = n.end_interval(1.0, 0.95);
        assert_eq!(iv.tail_latency_s, 0.0);
        assert_eq!(iv.queue_len, 0);
    }

    #[test]
    fn busy_fraction_spans_interval_boundaries() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(3.0, 0.0)); // runs 0..3
        n.advance(1.0);
        let iv1 = n.end_interval(1.0, 0.95);
        assert!((iv1.busy[0] - 1.0).abs() < 1e-12);
        n.begin_interval(1.0);
        n.advance(2.0);
        let iv2 = n.end_interval(2.0, 0.95);
        assert!((iv2.busy[0] - 1.0).abs() < 1e-12);
        n.begin_interval(2.0);
        n.advance(4.0);
        let iv3 = n.end_interval(4.0, 0.95);
        assert_eq!(iv3.completions, 1);
        assert!((iv3.busy[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arrival_order_preserved_after_preemption() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(10.0, 0.0));
        n.arrive(0.1, Demand::new(10.0, 0.0));
        n.arrive(0.2, Demand::new(10.0, 0.0)); // queued behind both
        n.advance(1.0);
        // Shrink to one server: both in-flight requests requeue in id order,
        // ahead of the queued third request.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 100.0)], true, 0.0);
        assert_eq!(n.queue_len(), 2); // one dispatched immediately
        n.advance(20.0);
        let iv = n.end_interval(20.0, 1.0);
        assert_eq!(iv.completions, 3);
    }

    #[test]
    fn in_flight_count_tracks_through_reconfigure() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(5.0, 0.0));
        n.arrive(0.0, Demand::new(5.0, 0.0));
        assert_eq!(n.in_flight(), 2);
        // DVFS rescale keeps both in flight.
        n.reconfigure(
            1.0,
            &[spec(CoreKind::Big, 2.0), spec(CoreKind::Big, 2.0)],
            false,
            0.0,
        );
        assert_eq!(n.in_flight(), 2);
        // Preempting remap requeues them, then redispatches one per server.
        n.reconfigure(2.0, &[spec(CoreKind::Big, 1.0)], true, 0.0);
        assert_eq!(n.in_flight(), 1);
        assert_eq!(n.queue_len(), 1);
        n.advance(100.0);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.total_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn reconfigure_rejects_empty() {
        ServiceNode::new().reconfigure(0.0, &[], true, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot change the server count")]
    fn dvfs_reconfigure_rejects_count_change() {
        let mut n = one_server(1.0);
        n.reconfigure(
            1.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            false,
            0.0,
        );
    }
}
