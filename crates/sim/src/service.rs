//! The latency-critical service node: a FIFO queue feeding a set of
//! heterogeneous core-servers.
//!
//! Requests arrive into a central FIFO queue and are dispatched to the
//! fastest idle server (requests cannot span cores). Service has two
//! sequential phases — a compute phase retired at the server's
//! frequency-dependent speed and a memory phase that is
//! frequency-insensitive — and both stretch under a contention slowdown
//! while batch jobs share the machine.
//!
//! Reconfigurations preempt in-flight requests (for core-mapping changes)
//! or rescale them (for pure DVFS changes), charging the corresponding
//! stall; this is how the paper's observation that "core-transitions are
//! far more costly relative to DVFS changes" enters the model.

use std::collections::VecDeque;

use hipster_platform::{CoreKind, Frequency};

use crate::latency::LatencyRecorder;
use crate::request::{Demand, Request, RequestId};

/// Specification of one server (one core allocated to the LC workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSpec {
    /// Core class backing this server.
    pub kind: CoreKind,
    /// Cluster frequency of that core.
    pub freq: Frequency,
    /// Compute speed in work units per second at that frequency.
    pub speed: f64,
    /// Service-time multiplier ≥ 1 from contention / cold caches.
    pub slowdown: f64,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    /// When the current execution (re)started.
    started: f64,
    /// Completion time under the current spec.
    finish: f64,
}

#[derive(Debug, Clone)]
struct Server {
    spec: ServerSpec,
    /// Earliest time this server may start (end of a reconfiguration stall).
    available_at: f64,
    in_flight: Option<InFlight>,
    busy_in_interval: f64,
}

impl Server {
    fn service_time(&self, req: &Request) -> f64 {
        (req.work_left / self.spec.speed + req.mem_left) * self.spec.slowdown
    }
}

/// Statistics of one completed monitoring interval of the service node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInterval {
    /// Requests that arrived during the interval.
    pub arrivals: usize,
    /// Requests that completed during the interval.
    pub completions: usize,
    /// Requests whose clients timed out during the interval.
    pub timeouts: usize,
    /// Tail latency at the requested percentile, seconds.
    ///
    /// When no request completed, this falls back to the age of the oldest
    /// request still in the system (a lower bound on its eventual latency),
    /// or 0 when the system is empty.
    pub tail_latency_s: f64,
    /// Mean latency of completed requests (0 when none completed).
    pub mean_latency_s: f64,
    /// Per-server busy fraction during the interval.
    pub busy: Vec<f64>,
    /// Queue length at the end of the interval (excluding in-flight).
    pub queue_len: usize,
}

/// FIFO multi-server queueing node for the latency-critical workload.
#[derive(Debug, Clone)]
pub struct ServiceNode {
    queue: VecDeque<Request>,
    servers: Vec<Server>,
    recorder: LatencyRecorder,
    next_id: u64,
    interval_start: f64,
    interval_arrivals: usize,
    interval_completions: usize,
    interval_timeouts: usize,
    total_completed: u64,
    /// Client-side request timeout; timed-out requests are dropped at
    /// dispatch and recorded as right-censored latencies.
    timeout_s: Option<f64>,
}

impl ServiceNode {
    /// Creates a node with no servers (configure before use).
    pub fn new() -> Self {
        ServiceNode {
            queue: VecDeque::new(),
            servers: Vec::new(),
            recorder: LatencyRecorder::new(),
            next_id: 0,
            interval_start: 0.0,
            interval_arrivals: 0,
            interval_completions: 0,
            interval_timeouts: 0,
            total_completed: 0,
            timeout_s: None,
        }
    }

    /// Sets the client-side request timeout (`None` = patient clients).
    ///
    /// # Panics
    ///
    /// Panics if the timeout is not strictly positive.
    pub fn set_timeout(&mut self, timeout_s: Option<f64>) {
        if let Some(t) = timeout_s {
            assert!(t > 0.0, "timeout must be positive: {t}");
        }
        self.timeout_s = timeout_s;
    }

    /// Number of servers currently configured.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Requests waiting in the queue (excluding in-flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently being serviced.
    pub fn in_flight(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.in_flight.is_some())
            .count()
    }

    /// Total requests completed since construction.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Reconfigures the server set at time `now`.
    ///
    /// * `preempt` — `true` for core-mapping changes: all in-flight requests
    ///   are preempted (remaining demand preserved) and requeued in arrival
    ///   order. `false` for pure DVFS changes: in-flight requests continue
    ///   with their remaining demand rescaled to the new speed.
    /// * `stall_s` — servers may not start work before `now + stall_s`
    ///   (migration or DVFS transition latency).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, if any spec has a non-positive speed or a
    /// slowdown below 1, or if `preempt` is `false` while the server count
    /// changes.
    pub fn reconfigure(&mut self, now: f64, specs: &[ServerSpec], preempt: bool, stall_s: f64) {
        assert!(!specs.is_empty(), "service node needs at least one server");
        for s in specs {
            assert!(s.speed > 0.0, "server speed must be positive: {s:?}");
            assert!(s.slowdown >= 1.0, "slowdown must be ≥ 1: {s:?}");
        }
        if preempt {
            self.preempt_all(now);
            self.servers = specs
                .iter()
                .map(|&spec| Server {
                    spec,
                    available_at: now + stall_s,
                    in_flight: None,
                    busy_in_interval: 0.0,
                })
                .collect();
        } else {
            assert_eq!(
                specs.len(),
                self.servers.len(),
                "DVFS-only reconfiguration cannot change the server count"
            );
            let interval_start = self.interval_start;
            for (server, &spec) in self.servers.iter_mut().zip(specs) {
                if let Some(fl) = server.in_flight.as_mut() {
                    // Consume demand proportionally to elapsed service time,
                    // then recompute the finish under the new spec.
                    let left = remaining_fraction(fl.started, fl.finish, now);
                    fl.req.work_left *= left;
                    fl.req.mem_left *= left;
                    server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                    fl.started = now;
                    let t = (fl.req.work_left / spec.speed + fl.req.mem_left) * spec.slowdown;
                    fl.finish = (now + stall_s) + t;
                }
                server.spec = spec;
                server.available_at = server.available_at.max(now + stall_s);
            }
        }
        self.dispatch(now + stall_s);
    }

    fn preempt_all(&mut self, now: f64) {
        let interval_start = self.interval_start;
        let mut preempted: Vec<Request> = Vec::new();
        for server in &mut self.servers {
            if let Some(mut fl) = server.in_flight.take() {
                server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                let left = remaining_fraction(fl.started, fl.finish, now);
                fl.req.work_left *= left;
                fl.req.mem_left *= left;
                preempted.push(fl.req);
            }
        }
        // Requeue ahead of waiting requests, preserving arrival order.
        preempted.sort_by_key(|r| r.id);
        for req in preempted.into_iter().rev() {
            self.queue.push_front(req);
        }
    }

    /// Marks the start of a monitoring interval at time `t`.
    pub fn begin_interval(&mut self, t: f64) {
        self.interval_start = t;
        self.interval_arrivals = 0;
        self.interval_completions = 0;
        self.interval_timeouts = 0;
        for s in &mut self.servers {
            s.busy_in_interval = 0.0;
        }
    }

    /// Enqueues a request arriving at `now` with the given demand, then
    /// dispatches if a server is free.
    pub fn arrive(&mut self, now: f64, demand: Demand) {
        let req = Request::new(RequestId(self.next_id), now, demand);
        self.next_id += 1;
        self.interval_arrivals += 1;
        self.queue.push_back(req);
        self.dispatch(now);
    }

    /// Earliest pending completion time, if any request is in flight.
    pub fn next_completion(&self) -> Option<f64> {
        self.servers
            .iter()
            .filter_map(|s| s.in_flight.as_ref().map(|f| f.finish))
            .min_by(f64::total_cmp)
    }

    /// Processes all completions up to and including time `to`.
    pub fn advance(&mut self, to: f64) {
        while let Some(t) = self.next_completion() {
            if t > to {
                break;
            }
            self.complete_one(t);
        }
    }

    /// Like [`ServiceNode::advance`], but appends each completion time to
    /// `out` (closed-loop generators schedule think timers from these).
    pub fn advance_collect(&mut self, to: f64, out: &mut Vec<f64>) {
        while let Some(t) = self.next_completion() {
            if t > to {
                break;
            }
            self.complete_one(t);
            out.push(t);
        }
    }

    fn complete_one(&mut self, t: f64) {
        let idx = self
            .servers
            .iter()
            .position(|s| s.in_flight.as_ref().is_some_and(|f| f.finish == t))
            .expect("completion time came from a server");
        let fl = self.servers[idx].in_flight.take().expect("server busy");
        self.servers[idx].busy_in_interval += t - fl.started.max(self.interval_start);
        self.servers[idx].available_at = t;
        self.recorder.record(fl.req.age(t));
        self.interval_completions += 1;
        self.total_completed += 1;
        self.dispatch(t);
    }

    /// Dispatches queued requests to free servers (fastest server first),
    /// dropping requests whose client already timed out.
    fn dispatch(&mut self, now: f64) {
        loop {
            // Shed timed-out requests from the queue head; their latency is
            // right-censored at the timeout so QoS accounting sees them.
            if let Some(t) = self.timeout_s {
                while self.queue.front().is_some_and(|r| r.age(now) > t) {
                    self.queue.pop_front();
                    self.recorder.record(t);
                    self.interval_timeouts += 1;
                }
            }
            if self.queue.is_empty() {
                return;
            }
            // Fastest free server whose stall has elapsed.
            let best = self
                .servers
                .iter_mut()
                .filter(|s| s.in_flight.is_none() && s.available_at <= now)
                .max_by(|a, b| {
                    (a.spec.speed / a.spec.slowdown).total_cmp(&(b.spec.speed / b.spec.slowdown))
                });
            let Some(server) = best else { return };
            let req = self.queue.pop_front().expect("queue non-empty");
            let service = server.service_time(&req);
            server.in_flight = Some(InFlight {
                req,
                started: now,
                finish: now + service,
            });
        }
    }

    /// Called by the engine when servers stalled until `t` become free, to
    /// start work that queued during the stall.
    pub fn kick(&mut self, t: f64) {
        self.dispatch(t);
    }

    /// Closes the interval at time `t_end`, returning its statistics.
    ///
    /// The tail latency is the `p`-th percentile of completions in the
    /// interval; see [`NodeInterval::tail_latency_s`] for the no-completion
    /// fallback.
    pub fn end_interval(&mut self, t_end: f64, p: f64) -> NodeInterval {
        // Account in-flight busy time up to the interval boundary.
        for s in &mut self.servers {
            if let Some(fl) = &s.in_flight {
                s.busy_in_interval += t_end - fl.started.max(self.interval_start);
            }
        }
        let dur = (t_end - self.interval_start).max(f64::EPSILON);
        let busy: Vec<f64> = self
            .servers
            .iter()
            .map(|s| (s.busy_in_interval / dur).clamp(0.0, 1.0))
            .collect();
        let (tail, mean, _n) = self.recorder.take_interval(p);
        let tail = tail.unwrap_or_else(|| self.oldest_age(t_end));
        NodeInterval {
            arrivals: self.interval_arrivals,
            completions: self.interval_completions,
            timeouts: self.interval_timeouts,
            tail_latency_s: tail,
            mean_latency_s: mean.unwrap_or(0.0),
            busy,
            queue_len: self.queue.len(),
        }
    }

    fn oldest_age(&self, now: f64) -> f64 {
        let queued = self.queue.front().map(|r| r.age(now));
        let in_flight = self
            .servers
            .iter()
            .filter_map(|s| s.in_flight.as_ref().map(|f| f.req.age(now)))
            .max_by(f64::total_cmp);
        match (queued, in_flight) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 0.0,
        }
    }
}

impl Default for ServiceNode {
    fn default() -> Self {
        Self::new()
    }
}

/// Fraction of a request's demand still outstanding when service ran
/// linearly from `started` toward `finish` and was interrupted at `now`.
fn remaining_fraction(started: f64, finish: f64, now: f64) -> f64 {
    let total = finish - started;
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - ((now - started) / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: CoreKind, speed: f64) -> ServerSpec {
        ServerSpec {
            kind,
            freq: Frequency::from_mhz(1000),
            speed,
            slowdown: 1.0,
        }
    }

    fn one_server(speed: f64) -> ServiceNode {
        let mut n = ServiceNode::new();
        n.reconfigure(0.0, &[spec(CoreKind::Big, speed)], true, 0.0);
        n.begin_interval(0.0);
        n
    }

    #[test]
    fn single_request_latency() {
        let mut n = one_server(2.0); // 2 work units/s
        n.arrive(0.0, Demand::new(1.0, 0.5)); // 0.5 s compute + 0.5 s memory
        n.advance(10.0);
        let iv = n.end_interval(10.0, 0.95);
        assert_eq!(iv.completions, 1);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
        assert!((iv.busy[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fifo_queueing_adds_wait() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(1.0, 0.0)); // served 0..1
        n.arrive(0.0, Demand::new(1.0, 0.0)); // served 1..2 → latency 2
        n.advance(5.0);
        let iv = n.end_interval(5.0, 1.0);
        assert_eq!(iv.completions, 2);
        assert!((iv.tail_latency_s - 2.0).abs() < 1e-12);
        assert!((iv.mean_latency_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fastest_server_preferred() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Small, 1.0), spec(CoreKind::Big, 4.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(4.0, 0.0)); // on big: 1 s; on small it'd be 4 s
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
        // Big (index 1) did the work.
        assert!(iv.busy[1] > 0.0 && iv.busy[0] == 0.0);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.advance(1.0);
        let iv = n.end_interval(1.0, 1.0);
        assert_eq!(iv.completions, 2);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_stretches_service() {
        let mut n = ServiceNode::new();
        let mut s = spec(CoreKind::Big, 1.0);
        s.slowdown = 2.0;
        n.reconfigure(0.0, &[s], true, 0.0);
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!((iv.tail_latency_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn preemption_preserves_remaining_work() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(2.0, 0.0)); // would finish at t=2
        n.advance(1.0);
        // Remap at t=1 onto a 2× faster server with no stall: half the work
        // (1 unit) remains → 0.5 s more.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 2.0)], true, 0.0);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn migration_stall_delays_service() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        // Immediately remap with a 0.5 s stall: finish at 1.5 s.
        n.reconfigure(0.0, &[spec(CoreKind::Big, 1.0)], true, 0.5);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn dvfs_change_rescales_in_flight() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(2.0, 0.0)); // finish at 2 under speed 1
        n.advance(1.0);
        // At t=1, double the speed without preemption: 1 unit left → 0.5 s.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 2.0)], false, 0.0);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn no_completion_falls_back_to_oldest_age() {
        let mut n = one_server(0.001); // pathologically slow
        n.arrive(0.0, Demand::new(100.0, 0.0));
        n.arrive(0.5, Demand::new(100.0, 0.0));
        n.advance(1.0);
        let iv = n.end_interval(1.0, 0.95);
        assert_eq!(iv.completions, 0);
        assert!(
            (iv.tail_latency_s - 1.0).abs() < 1e-12,
            "oldest request age"
        );
    }

    #[test]
    fn empty_system_reports_zero_tail() {
        let mut n = one_server(1.0);
        n.advance(1.0);
        let iv = n.end_interval(1.0, 0.95);
        assert_eq!(iv.tail_latency_s, 0.0);
        assert_eq!(iv.queue_len, 0);
    }

    #[test]
    fn busy_fraction_spans_interval_boundaries() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(3.0, 0.0)); // runs 0..3
        n.advance(1.0);
        let iv1 = n.end_interval(1.0, 0.95);
        assert!((iv1.busy[0] - 1.0).abs() < 1e-12);
        n.begin_interval(1.0);
        n.advance(2.0);
        let iv2 = n.end_interval(2.0, 0.95);
        assert!((iv2.busy[0] - 1.0).abs() < 1e-12);
        n.begin_interval(2.0);
        n.advance(4.0);
        let iv3 = n.end_interval(4.0, 0.95);
        assert_eq!(iv3.completions, 1);
        assert!((iv3.busy[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arrival_order_preserved_after_preemption() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(10.0, 0.0));
        n.arrive(0.1, Demand::new(10.0, 0.0));
        n.arrive(0.2, Demand::new(10.0, 0.0)); // queued behind both
        n.advance(1.0);
        // Shrink to one server: both in-flight requests requeue in id order,
        // ahead of the queued third request.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 100.0)], true, 0.0);
        assert_eq!(n.queue_len(), 2); // one dispatched immediately
        n.advance(20.0);
        let iv = n.end_interval(20.0, 1.0);
        assert_eq!(iv.completions, 3);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn reconfigure_rejects_empty() {
        ServiceNode::new().reconfigure(0.0, &[], true, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot change the server count")]
    fn dvfs_reconfigure_rejects_count_change() {
        let mut n = one_server(1.0);
        n.reconfigure(
            1.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            false,
            0.0,
        );
    }
}
