//! The latency-critical service node: a FIFO queue feeding a set of
//! heterogeneous core-servers.
//!
//! Requests arrive into a central FIFO queue and are dispatched to the
//! fastest idle server (requests cannot span cores). Service has two
//! sequential phases — a compute phase retired at the server's
//! frequency-dependent speed and a memory phase that is
//! frequency-insensitive — and both stretch under a contention slowdown
//! while batch jobs share the machine.
//!
//! Reconfigurations preempt in-flight requests (for core-mapping changes)
//! or rescale them (for pure DVFS changes), charging the corresponding
//! stall; this is how the paper's observation that "core-transitions are
//! far more costly relative to DVFS changes" enters the model.
//!
//! # Event-count scalability
//!
//! The node is indexed so per-event cost is O(log n) in the server count
//! rather than O(n):
//!
//! * pending completions live in a min-heap of `(finish, server)` — finding
//!   and retiring the earliest completion is a heap pop, not a scan plus a
//!   float-equality re-scan;
//! * free servers live in a max-heap ordered by effective speed
//!   (`speed / slowdown`, ties toward the higher server index), so
//!   `dispatch` pops the preferred server instead of re-scanning all of
//!   them; servers still inside a reconfiguration stall wait in a side list
//!   and are promoted when their stall elapses;
//! * the in-flight count is tracked incrementally.
//!
//! Heap tie-breaking reproduces the order the old linear scans produced
//! (completions: lowest server index first; dispatch: highest server index
//! among equally fast servers), so traces are bit-identical to the
//! pre-indexed implementation — property-tested against the frozen copy in
//! [`crate::reference`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hipster_platform::{CoreKind, Frequency};

use crate::latency::LatencyRecorder;
use crate::ordf64::TotalF64;
use crate::request::{Demand, Request, RequestId};

/// Specification of one server (one core allocated to the LC workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSpec {
    /// Core class backing this server.
    pub kind: CoreKind,
    /// Cluster frequency of that core.
    pub freq: Frequency,
    /// Compute speed in work units per second at that frequency.
    pub speed: f64,
    /// Service-time multiplier ≥ 1 from contention / cold caches.
    pub slowdown: f64,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    /// When the current execution (re)started.
    started: f64,
    /// Completion time under the current spec.
    finish: f64,
}

#[derive(Debug, Clone)]
struct Server {
    spec: ServerSpec,
    /// Effective dispatch speed, `spec.speed / spec.slowdown` (precomputed
    /// at reconfiguration; the free-heap ordering key).
    eff: f64,
    /// Earliest time this server may start (end of a reconfiguration stall).
    available_at: f64,
    in_flight: Option<InFlight>,
    busy_in_interval: f64,
}

impl Server {
    fn service_time(&self, req: &Request) -> f64 {
        (req.work_left / self.spec.speed + req.mem_left) * self.spec.slowdown
    }
}

/// Pending-completion heap entry; min-heap order on `(finish, server)` so
/// equal finish times retire the lowest server index first — the order the
/// old `position(..finish == t)` scan produced. The derived `Ord` is
/// lexicographic over ([`TotalF64`], `usize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Completion {
    finish: TotalF64,
    server: usize,
}

/// Free-server heap entry; max-heap order on `(eff, server)` so dispatch
/// pops the fastest free server, ties toward the *highest* index — the
/// element the old `Iterator::max_by` scan (last maximal) selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FreeServer {
    eff: TotalF64,
    server: usize,
}

/// Statistics of one completed monitoring interval of the service node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInterval {
    /// Requests that arrived during the interval.
    pub arrivals: usize,
    /// Requests that completed during the interval.
    pub completions: usize,
    /// Requests whose clients timed out during the interval.
    pub timeouts: usize,
    /// Tail latency at the requested percentile, seconds.
    ///
    /// When no request completed, this falls back to the age of the oldest
    /// request still in the system (a lower bound on its eventual latency),
    /// or 0 when the system is empty.
    pub tail_latency_s: f64,
    /// Mean latency of completed requests (0 when none completed).
    pub mean_latency_s: f64,
    /// Per-server busy fraction during the interval.
    pub busy: Vec<f64>,
    /// Queue length at the end of the interval (excluding in-flight).
    pub queue_len: usize,
}

/// FIFO multi-server queueing node for the latency-critical workload.
///
/// Indexed for event-count scalability: pending completions in a
/// `(finish, server)` min-heap, free servers in an effective-speed max-heap
/// and an incremental in-flight count keep per-event cost at O(log n) in
/// the server count, with tie-breaking that reproduces the pre-indexed
/// linear scans bit-for-bit (see [`crate::reference`]).
#[derive(Debug, Clone)]
pub struct ServiceNode {
    queue: VecDeque<Request>,
    servers: Vec<Server>,
    /// Min-heap of pending completions, one entry per busy server. Entries
    /// are never stale: reconfigurations rebuild the heap and completions
    /// pop their own entry.
    completions: BinaryHeap<Reverse<Completion>>,
    /// Max-heap of free servers whose reconfiguration stall has elapsed.
    free: BinaryHeap<FreeServer>,
    /// Free servers not (yet) proven eligible: reconfigurations park every
    /// idle server here, and dispatch demotes popped servers whose stall
    /// has not elapsed at its (non-monotonic) timestamp. Drained into
    /// `free` by the first dispatch with a non-empty queue that finds them
    /// eligible, so on the steady-state hot path the emptiness check is
    /// all that runs.
    stalled: Vec<usize>,
    /// Number of busy servers (kept incrementally; also the size of
    /// `completions`).
    in_flight_count: usize,
    recorder: LatencyRecorder,
    /// Reused buffer for preempted in-flight requests (no allocation per
    /// reconfiguration once warm).
    preempt_scratch: Vec<Request>,
    next_id: u64,
    interval_start: f64,
    interval_arrivals: usize,
    interval_completions: usize,
    interval_timeouts: usize,
    total_completed: u64,
    /// Client-side request timeout; timed-out requests are dropped at
    /// dispatch and recorded as right-censored latencies.
    timeout_s: Option<f64>,
}

impl ServiceNode {
    /// Creates a node with no servers (configure before use).
    pub fn new() -> Self {
        ServiceNode {
            queue: VecDeque::new(),
            servers: Vec::new(),
            completions: BinaryHeap::new(),
            free: BinaryHeap::new(),
            stalled: Vec::new(),
            in_flight_count: 0,
            recorder: LatencyRecorder::new(),
            preempt_scratch: Vec::new(),
            next_id: 0,
            interval_start: 0.0,
            interval_arrivals: 0,
            interval_completions: 0,
            interval_timeouts: 0,
            total_completed: 0,
            timeout_s: None,
        }
    }

    /// Sets the client-side request timeout (`None` = patient clients).
    ///
    /// # Panics
    ///
    /// Panics if the timeout is not strictly positive.
    pub fn set_timeout(&mut self, timeout_s: Option<f64>) {
        if let Some(t) = timeout_s {
            assert!(t > 0.0, "timeout must be positive: {t}");
        }
        self.timeout_s = timeout_s;
    }

    /// Number of servers currently configured.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Requests waiting in the queue (excluding in-flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently being serviced (O(1)).
    pub fn in_flight(&self) -> usize {
        self.in_flight_count
    }

    /// Total requests completed since construction.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Reconfigures the server set at time `now`.
    ///
    /// * `preempt` — `true` for core-mapping changes: all in-flight requests
    ///   are preempted (remaining demand preserved) and requeued in arrival
    ///   order. `false` for pure DVFS changes: in-flight requests continue
    ///   with their remaining demand rescaled to the new speed.
    /// * `stall_s` — servers may not start work before `now + stall_s`
    ///   (migration or DVFS transition latency).
    ///
    /// Rebuilds the completion and free-server heaps (O(n log n) per
    /// reconfiguration — once per monitoring interval, not per event).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, if any spec has a non-positive speed or a
    /// slowdown below 1, or if `preempt` is `false` while the server count
    /// changes.
    pub fn reconfigure(&mut self, now: f64, specs: &[ServerSpec], preempt: bool, stall_s: f64) {
        assert!(!specs.is_empty(), "service node needs at least one server");
        for s in specs {
            assert!(s.speed > 0.0, "server speed must be positive: {s:?}");
            assert!(s.slowdown >= 1.0, "slowdown must be ≥ 1: {s:?}");
        }
        if preempt {
            self.preempt_all(now);
            self.servers.clear();
            self.servers.extend(specs.iter().map(|&spec| Server {
                spec,
                eff: spec.speed / spec.slowdown,
                available_at: now + stall_s,
                in_flight: None,
                busy_in_interval: 0.0,
            }));
        } else {
            assert_eq!(
                specs.len(),
                self.servers.len(),
                "DVFS-only reconfiguration cannot change the server count"
            );
            let interval_start = self.interval_start;
            for (server, &spec) in self.servers.iter_mut().zip(specs) {
                if let Some(fl) = server.in_flight.as_mut() {
                    // Consume demand proportionally to elapsed service time,
                    // then recompute the finish under the new spec.
                    let left = remaining_fraction(fl.started, fl.finish, now);
                    fl.req.work_left *= left;
                    fl.req.mem_left *= left;
                    server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                    fl.started = now;
                    let t = (fl.req.work_left / spec.speed + fl.req.mem_left) * spec.slowdown;
                    fl.finish = (now + stall_s) + t;
                }
                server.spec = spec;
                server.eff = spec.speed / spec.slowdown;
                server.available_at = server.available_at.max(now + stall_s);
            }
        }
        self.rebuild_index();
        self.dispatch(now + stall_s);
    }

    /// Rebuilds the completion heap, free heap and stall list from the
    /// server array. Free servers all enter `stalled`; the next dispatch
    /// promotes the ones whose `available_at` has passed.
    fn rebuild_index(&mut self) {
        self.completions.clear();
        self.free.clear();
        self.stalled.clear();
        self.in_flight_count = 0;
        for (i, s) in self.servers.iter().enumerate() {
            match &s.in_flight {
                Some(fl) => {
                    self.completions.push(Reverse(Completion {
                        finish: TotalF64(fl.finish),
                        server: i,
                    }));
                    self.in_flight_count += 1;
                }
                None => self.stalled.push(i),
            }
        }
    }

    fn preempt_all(&mut self, now: f64) {
        let interval_start = self.interval_start;
        let mut preempted = std::mem::take(&mut self.preempt_scratch);
        preempted.clear();
        for server in &mut self.servers {
            if let Some(mut fl) = server.in_flight.take() {
                server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                let left = remaining_fraction(fl.started, fl.finish, now);
                fl.req.work_left *= left;
                fl.req.mem_left *= left;
                preempted.push(fl.req);
            }
        }
        // Requeue ahead of waiting requests, preserving arrival order.
        preempted.sort_by_key(|r| r.id);
        for req in preempted.drain(..).rev() {
            self.queue.push_front(req);
        }
        self.preempt_scratch = preempted;
    }

    /// Marks the start of a monitoring interval at time `t`.
    pub fn begin_interval(&mut self, t: f64) {
        self.interval_start = t;
        self.interval_arrivals = 0;
        self.interval_completions = 0;
        self.interval_timeouts = 0;
        for s in &mut self.servers {
            s.busy_in_interval = 0.0;
        }
    }

    /// Enqueues a request arriving at `now` with the given demand, then
    /// dispatches if a server is free.
    pub fn arrive(&mut self, now: f64, demand: Demand) {
        let req = Request::new(RequestId(self.next_id), now, demand);
        self.next_id += 1;
        self.interval_arrivals += 1;
        self.queue.push_back(req);
        self.dispatch(now);
    }

    /// Earliest pending completion time, if any request is in flight (O(1):
    /// a peek at the completion heap).
    pub fn next_completion(&self) -> Option<f64> {
        self.completions.peek().map(|Reverse(c)| c.finish.0)
    }

    /// Processes all completions up to and including time `to`.
    pub fn advance(&mut self, to: f64) {
        while let Some(&Reverse(c)) = self.completions.peek() {
            if c.finish.0 > to {
                break;
            }
            self.completions.pop();
            self.complete_server(c.server, c.finish.0);
        }
    }

    /// Like [`ServiceNode::advance`], but appends each completion time to
    /// `out` (closed-loop generators schedule think timers from these).
    pub fn advance_collect(&mut self, to: f64, out: &mut Vec<f64>) {
        while let Some(&Reverse(c)) = self.completions.peek() {
            if c.finish.0 > to {
                break;
            }
            self.completions.pop();
            self.complete_server(c.server, c.finish.0);
            out.push(c.finish.0);
        }
    }

    /// Retires the request on server `idx` at its finish time `t` (the
    /// popped completion-heap entry), then dispatches onto the freed server.
    fn complete_server(&mut self, idx: usize, t: f64) {
        let fl = self.servers[idx].in_flight.take().expect("server busy");
        self.servers[idx].busy_in_interval += t - fl.started.max(self.interval_start);
        self.servers[idx].available_at = t;
        self.in_flight_count -= 1;
        self.free.push(FreeServer {
            eff: TotalF64(self.servers[idx].eff),
            server: idx,
        });
        self.recorder.record(fl.req.age(t));
        self.interval_completions += 1;
        self.total_completed += 1;
        self.dispatch(t);
    }

    /// Promotes stalled servers whose `available_at` has passed into the
    /// free heap. `stalled` is only populated between a reconfiguration and
    /// its kick, so this is an O(1) emptiness check on the hot path.
    fn promote_stalled(&mut self, now: f64) {
        let mut i = 0;
        while i < self.stalled.len() {
            let idx = self.stalled[i];
            if self.servers[idx].available_at <= now {
                self.free.push(FreeServer {
                    eff: TotalF64(self.servers[idx].eff),
                    server: idx,
                });
                self.stalled.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Dispatches queued requests to free servers (fastest server first),
    /// dropping requests whose client already timed out.
    fn dispatch(&mut self, now: f64) {
        // Shed timed-out requests from the queue head; their latency is
        // right-censored at the timeout so QoS accounting sees them. One
        // pass suffices: queued requests are in arrival order, so ages only
        // decrease toward the tail.
        if let Some(t) = self.timeout_s {
            while self.queue.front().is_some_and(|r| r.age(now) > t) {
                self.queue.pop_front();
                self.recorder.record(t);
                self.interval_timeouts += 1;
            }
        }
        if self.queue.is_empty() {
            return;
        }
        if !self.stalled.is_empty() {
            self.promote_stalled(now);
        }
        while !self.queue.is_empty() {
            // Fastest free server whose stall has elapsed: the free-heap
            // maximum. Dispatch timestamps are not monotonic — a
            // reconfiguration dispatches at `now + stall` and the event loop
            // then delivers arrivals *inside* the stall window — so a popped
            // server may still be stalled at this `now`; demote it back to
            // the stall list (scanning downward in heap order keeps the
            // first eligible pop the fastest eligible server).
            let Some(FreeServer { server: idx, .. }) = self.free.pop() else {
                return;
            };
            if self.servers[idx].available_at > now {
                self.stalled.push(idx);
                continue;
            }
            let req = self.queue.pop_front().expect("queue non-empty");
            let server = &mut self.servers[idx];
            let service = server.service_time(&req);
            let finish = now + service;
            server.in_flight = Some(InFlight {
                req,
                started: now,
                finish,
            });
            self.in_flight_count += 1;
            self.completions.push(Reverse(Completion {
                finish: TotalF64(finish),
                server: idx,
            }));
        }
    }

    /// Called by the engine when servers stalled until `t` become free, to
    /// start work that queued during the stall.
    pub fn kick(&mut self, t: f64) {
        self.dispatch(t);
    }

    /// Closes the interval at time `t_end`, returning its statistics.
    ///
    /// The tail latency is the `p`-th percentile of completions in the
    /// interval, computed by selection rather than a full sort; see
    /// [`NodeInterval::tail_latency_s`] for the no-completion fallback. The
    /// returned [`NodeInterval::busy`] vector is the node's only
    /// per-interval allocation — it is owned by the caller's interval
    /// record, so it cannot be recycled here.
    pub fn end_interval(&mut self, t_end: f64, p: f64) -> NodeInterval {
        // Account in-flight busy time up to the interval boundary.
        for s in &mut self.servers {
            if let Some(fl) = &s.in_flight {
                s.busy_in_interval += t_end - fl.started.max(self.interval_start);
            }
        }
        let dur = (t_end - self.interval_start).max(f64::EPSILON);
        let busy: Vec<f64> = self
            .servers
            .iter()
            .map(|s| (s.busy_in_interval / dur).clamp(0.0, 1.0))
            .collect();
        let (tail, mean, _n) = self.recorder.take_interval(p);
        let tail = tail.unwrap_or_else(|| self.oldest_age(t_end));
        NodeInterval {
            arrivals: self.interval_arrivals,
            completions: self.interval_completions,
            timeouts: self.interval_timeouts,
            tail_latency_s: tail,
            mean_latency_s: mean.unwrap_or(0.0),
            busy,
            queue_len: self.queue.len(),
        }
    }

    /// Age of the oldest request still in the system. Only consulted when
    /// an interval ends with zero completions (a cold, near-idle or fully
    /// wedged interval), so the O(n) scan is off the hot path.
    fn oldest_age(&self, now: f64) -> f64 {
        let queued = self.queue.front().map(|r| r.age(now));
        let in_flight = self
            .servers
            .iter()
            .filter_map(|s| s.in_flight.as_ref().map(|f| f.req.age(now)))
            .max_by(f64::total_cmp);
        match (queued, in_flight) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 0.0,
        }
    }
}

impl Default for ServiceNode {
    fn default() -> Self {
        Self::new()
    }
}

/// Fraction of a request's demand still outstanding when service ran
/// linearly from `started` toward `finish` and was interrupted at `now`.
fn remaining_fraction(started: f64, finish: f64, now: f64) -> f64 {
    let total = finish - started;
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - ((now - started) / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: CoreKind, speed: f64) -> ServerSpec {
        ServerSpec {
            kind,
            freq: Frequency::from_mhz(1000),
            speed,
            slowdown: 1.0,
        }
    }

    fn one_server(speed: f64) -> ServiceNode {
        let mut n = ServiceNode::new();
        n.reconfigure(0.0, &[spec(CoreKind::Big, speed)], true, 0.0);
        n.begin_interval(0.0);
        n
    }

    #[test]
    fn single_request_latency() {
        let mut n = one_server(2.0); // 2 work units/s
        n.arrive(0.0, Demand::new(1.0, 0.5)); // 0.5 s compute + 0.5 s memory
        n.advance(10.0);
        let iv = n.end_interval(10.0, 0.95);
        assert_eq!(iv.completions, 1);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
        assert!((iv.busy[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fifo_queueing_adds_wait() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(1.0, 0.0)); // served 0..1
        n.arrive(0.0, Demand::new(1.0, 0.0)); // served 1..2 → latency 2
        n.advance(5.0);
        let iv = n.end_interval(5.0, 1.0);
        assert_eq!(iv.completions, 2);
        assert!((iv.tail_latency_s - 2.0).abs() < 1e-12);
        assert!((iv.mean_latency_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fastest_server_preferred() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Small, 1.0), spec(CoreKind::Big, 4.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(4.0, 0.0)); // on big: 1 s; on small it'd be 4 s
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
        // Big (index 1) did the work.
        assert!(iv.busy[1] > 0.0 && iv.busy[0] == 0.0);
    }

    #[test]
    fn equal_speed_tie_breaks_to_highest_index() {
        // The old `max_by` scan returned the *last* maximal server; the
        // free heap must reproduce that.
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[
                spec(CoreKind::Big, 2.0),
                spec(CoreKind::Big, 2.0),
                spec(CoreKind::Big, 2.0),
            ],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(2.0, 0.0));
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(iv.busy[2] > 0.0, "highest-index server should win the tie");
        assert!(iv.busy[0] == 0.0 && iv.busy[1] == 0.0);
    }

    #[test]
    fn equal_finish_completes_lowest_index_first() {
        // Two identical servers, two identical requests submitted together:
        // both finish at the same instant; the completion heap must retire
        // server 0's request first (the old `position` scan order). The
        // third request then dispatches onto server 0.
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0)); // server 1 (tie → highest idx)
        n.arrive(0.0, Demand::new(1.0, 0.0)); // server 0
        n.arrive(0.0, Demand::new(1.0, 0.0)); // queued
        n.advance(1.0);
        assert_eq!(n.in_flight(), 1);
        let iv = n.end_interval(2.0, 1.0);
        assert_eq!(iv.completions, 2);
        // Server 0 freed first at t=1 and picked up the queued request.
        assert!((iv.busy[0] - 1.0).abs() < 1e-12, "{:?}", iv.busy);
        assert!((iv.busy[1] - 0.5).abs() < 1e-12, "{:?}", iv.busy);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.advance(1.0);
        let iv = n.end_interval(1.0, 1.0);
        assert_eq!(iv.completions, 2);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_stretches_service() {
        let mut n = ServiceNode::new();
        let mut s = spec(CoreKind::Big, 1.0);
        s.slowdown = 2.0;
        n.reconfigure(0.0, &[s], true, 0.0);
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!((iv.tail_latency_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn preemption_preserves_remaining_work() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(2.0, 0.0)); // would finish at t=2
        n.advance(1.0);
        // Remap at t=1 onto a 2× faster server with no stall: half the work
        // (1 unit) remains → 0.5 s more.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 2.0)], true, 0.0);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn migration_stall_delays_service() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(1.0, 0.0));
        // Immediately remap with a 0.5 s stall: finish at 1.5 s.
        n.reconfigure(0.0, &[spec(CoreKind::Big, 1.0)], true, 0.5);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn arrivals_during_stall_wait_for_kick() {
        let mut n = one_server(1.0);
        // Remap with a 1 s stall, then let a request arrive mid-stall: it
        // must not start before the stall elapses.
        n.reconfigure(0.0, &[spec(CoreKind::Big, 1.0)], true, 1.0);
        n.arrive(0.5, Demand::new(1.0, 0.0));
        n.advance(0.9);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.queue_len(), 1);
        n.kick(1.0);
        assert_eq!(n.in_flight(), 1);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        // Arrived at 0.5, started at 1.0, finished at 2.0 → latency 1.5.
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn dvfs_change_rescales_in_flight() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(2.0, 0.0)); // finish at 2 under speed 1
        n.advance(1.0);
        // At t=1, double the speed without preemption: 1 unit left → 0.5 s.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 2.0)], false, 0.0);
        n.advance(10.0);
        let iv = n.end_interval(10.0, 1.0);
        assert_eq!(iv.completions, 1);
        assert!(
            (iv.tail_latency_s - 1.5).abs() < 1e-9,
            "{}",
            iv.tail_latency_s
        );
    }

    #[test]
    fn no_completion_falls_back_to_oldest_age() {
        let mut n = one_server(0.001); // pathologically slow
        n.arrive(0.0, Demand::new(100.0, 0.0));
        n.arrive(0.5, Demand::new(100.0, 0.0));
        n.advance(1.0);
        let iv = n.end_interval(1.0, 0.95);
        assert_eq!(iv.completions, 0);
        assert!(
            (iv.tail_latency_s - 1.0).abs() < 1e-12,
            "oldest request age"
        );
    }

    #[test]
    fn empty_system_reports_zero_tail() {
        let mut n = one_server(1.0);
        n.advance(1.0);
        let iv = n.end_interval(1.0, 0.95);
        assert_eq!(iv.tail_latency_s, 0.0);
        assert_eq!(iv.queue_len, 0);
    }

    #[test]
    fn busy_fraction_spans_interval_boundaries() {
        let mut n = one_server(1.0);
        n.arrive(0.0, Demand::new(3.0, 0.0)); // runs 0..3
        n.advance(1.0);
        let iv1 = n.end_interval(1.0, 0.95);
        assert!((iv1.busy[0] - 1.0).abs() < 1e-12);
        n.begin_interval(1.0);
        n.advance(2.0);
        let iv2 = n.end_interval(2.0, 0.95);
        assert!((iv2.busy[0] - 1.0).abs() < 1e-12);
        n.begin_interval(2.0);
        n.advance(4.0);
        let iv3 = n.end_interval(4.0, 0.95);
        assert_eq!(iv3.completions, 1);
        assert!((iv3.busy[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arrival_order_preserved_after_preemption() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(10.0, 0.0));
        n.arrive(0.1, Demand::new(10.0, 0.0));
        n.arrive(0.2, Demand::new(10.0, 0.0)); // queued behind both
        n.advance(1.0);
        // Shrink to one server: both in-flight requests requeue in id order,
        // ahead of the queued third request.
        n.reconfigure(1.0, &[spec(CoreKind::Big, 100.0)], true, 0.0);
        assert_eq!(n.queue_len(), 2); // one dispatched immediately
        n.advance(20.0);
        let iv = n.end_interval(20.0, 1.0);
        assert_eq!(iv.completions, 3);
    }

    #[test]
    fn in_flight_count_tracks_through_reconfigure() {
        let mut n = ServiceNode::new();
        n.reconfigure(
            0.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            true,
            0.0,
        );
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(5.0, 0.0));
        n.arrive(0.0, Demand::new(5.0, 0.0));
        assert_eq!(n.in_flight(), 2);
        // DVFS rescale keeps both in flight.
        n.reconfigure(
            1.0,
            &[spec(CoreKind::Big, 2.0), spec(CoreKind::Big, 2.0)],
            false,
            0.0,
        );
        assert_eq!(n.in_flight(), 2);
        // Preempting remap requeues them, then redispatches one per server.
        n.reconfigure(2.0, &[spec(CoreKind::Big, 1.0)], true, 0.0);
        assert_eq!(n.in_flight(), 1);
        assert_eq!(n.queue_len(), 1);
        n.advance(100.0);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.total_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn reconfigure_rejects_empty() {
        ServiceNode::new().reconfigure(0.0, &[], true, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot change the server count")]
    fn dvfs_reconfigure_rejects_count_change() {
        let mut n = one_server(1.0);
        n.reconfigure(
            1.0,
            &[spec(CoreKind::Big, 1.0), spec(CoreKind::Big, 1.0)],
            false,
            0.0,
        );
    }
}
