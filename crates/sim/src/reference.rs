//! Frozen pre-optimization event machinery, kept as differential oracles.
//!
//! PR 3 replaced the service node's linear scans (per-event `min`/`max`
//! sweeps over every server, float-equality completion lookup, full-sort
//! percentiles, a `Vec` thinking pool with O(n) scans) with indexed heaps
//! and order statistics; PR 5 then replaced the free-server max-heap with
//! speed-class bitmap free lists; PR 6 replaced the packed-`u128`
//! completion heap and the binary-heap think pool with the calendar queue.
//! This module preserves the *old* implementations, verbatim in behaviour,
//! for two purposes:
//!
//! 1. **Differential testing** — property tests drive [`ReferenceNode`]
//!    (pre-PR3, linear scans) and [`HeapNode`] (PR 3/4-era, free-server
//!    max-heap) against [`ServiceNode`](crate::ServiceNode) with identical
//!    event sequences and assert bit-identical completions, timeouts and
//!    interval statistics (`tests/node_equivalence.rs`,
//!    `tests/dispatch_equivalence.rs`); `tests/calendar_equivalence.rs`
//!    drives the [`CalendarQueue`](crate::CalendarQueue) against the frozen
//!    [`PackedHeap`] (and the calendar `ThinkPool` against
//!    [`HeapThinkPool`]) op-for-op.
//! 2. **Benchmark baseline** — `repro bench` measures the frozen
//!    implementations with the same harness so `BENCH_PR3.json` /
//!    `BENCH_PR5.json` / `BENCH_PR6.json` record true speedups, and future
//!    PRs inherit a perf trajectory anchored at the earlier engines.
//!    [`PackedHeapNode`] instantiates the production node body over the
//!    frozen heap, so the PR 6 matrix varies *only* the event core.
//!
//! Nothing here should be used by production code paths; each frozen copy
//! intentionally keeps the costs its era paid.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::completion::CompletionQueue;
use crate::latency::LatencyRecorder;
use crate::ordf64::TotalF64;
use crate::request::{Demand, Request, RequestId};
use crate::service::{NodeInterval, QueuedNode, ServerSpec};

/// Exact percentile via a full sort — the pre-PR3 implementation of
/// [`percentile`](crate::percentile) (same linear-interpolation convention,
/// O(n log n) instead of O(n)).
pub fn percentile_sort(samples: &mut [f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "percentile {p} not in [0,1]");
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n == 1 {
        return Some(samples[0]);
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(samples[lo] + (samples[hi] - samples[lo]) * frac)
}

#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    started: f64,
    finish: f64,
}

#[derive(Debug, Clone)]
struct Server {
    spec: ServerSpec,
    available_at: f64,
    in_flight: Option<InFlight>,
    busy_in_interval: f64,
}

impl Server {
    fn service_time(&self, req: &Request) -> f64 {
        (req.work_left / self.spec.speed + req.mem_left) * self.spec.slowdown
    }
}

/// The pre-PR3 FIFO multi-server queueing node: per-event linear scans over
/// all servers, float-equality completion re-scan, per-interval allocations.
///
/// API mirrors [`ServiceNode`](crate::ServiceNode) exactly; see that type
/// for semantics. Kept only for differential tests and `repro bench`.
#[derive(Debug, Clone)]
pub struct ReferenceNode {
    queue: VecDeque<Request>,
    servers: Vec<Server>,
    samples: Vec<f64>,
    next_id: u64,
    interval_start: f64,
    interval_arrivals: usize,
    interval_completions: usize,
    interval_timeouts: usize,
    total_completed: u64,
    timeout_s: Option<f64>,
}

impl ReferenceNode {
    /// Creates a node with no servers (configure before use).
    pub fn new() -> Self {
        ReferenceNode {
            queue: VecDeque::new(),
            servers: Vec::new(),
            samples: Vec::new(),
            next_id: 0,
            interval_start: 0.0,
            interval_arrivals: 0,
            interval_completions: 0,
            interval_timeouts: 0,
            total_completed: 0,
            timeout_s: None,
        }
    }

    /// Sets the client-side request timeout (`None` = patient clients).
    pub fn set_timeout(&mut self, timeout_s: Option<f64>) {
        if let Some(t) = timeout_s {
            assert!(t > 0.0, "timeout must be positive: {t}");
        }
        self.timeout_s = timeout_s;
    }

    /// Number of servers currently configured.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Requests waiting in the queue (excluding in-flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently being serviced (O(n) scan, as the original).
    pub fn in_flight(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.in_flight.is_some())
            .count()
    }

    /// Total requests completed since construction.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Reconfigures the server set at time `now` (see
    /// [`ServiceNode::reconfigure`](crate::ServiceNode::reconfigure)).
    pub fn reconfigure(&mut self, now: f64, specs: &[ServerSpec], preempt: bool, stall_s: f64) {
        assert!(!specs.is_empty(), "service node needs at least one server");
        for s in specs {
            assert!(s.speed > 0.0, "server speed must be positive: {s:?}");
            assert!(s.slowdown >= 1.0, "slowdown must be ≥ 1: {s:?}");
        }
        if preempt {
            self.preempt_all(now);
            self.servers = specs
                .iter()
                .map(|&spec| Server {
                    spec,
                    available_at: now + stall_s,
                    in_flight: None,
                    busy_in_interval: 0.0,
                })
                .collect();
        } else {
            assert_eq!(
                specs.len(),
                self.servers.len(),
                "DVFS-only reconfiguration cannot change the server count"
            );
            let interval_start = self.interval_start;
            for (server, &spec) in self.servers.iter_mut().zip(specs) {
                if let Some(fl) = server.in_flight.as_mut() {
                    let left = remaining_fraction(fl.started, fl.finish, now);
                    fl.req.work_left *= left;
                    fl.req.mem_left *= left;
                    server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                    fl.started = now;
                    let t = (fl.req.work_left / spec.speed + fl.req.mem_left) * spec.slowdown;
                    fl.finish = (now + stall_s) + t;
                }
                server.spec = spec;
                server.available_at = server.available_at.max(now + stall_s);
            }
        }
        self.dispatch(now + stall_s);
    }

    fn preempt_all(&mut self, now: f64) {
        let interval_start = self.interval_start;
        let mut preempted: Vec<Request> = Vec::new();
        for server in &mut self.servers {
            if let Some(mut fl) = server.in_flight.take() {
                server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                let left = remaining_fraction(fl.started, fl.finish, now);
                fl.req.work_left *= left;
                fl.req.mem_left *= left;
                preempted.push(fl.req);
            }
        }
        preempted.sort_by_key(|r| r.id);
        for req in preempted.into_iter().rev() {
            self.queue.push_front(req);
        }
    }

    /// Marks the start of a monitoring interval at time `t`.
    pub fn begin_interval(&mut self, t: f64) {
        self.interval_start = t;
        self.interval_arrivals = 0;
        self.interval_completions = 0;
        self.interval_timeouts = 0;
        for s in &mut self.servers {
            s.busy_in_interval = 0.0;
        }
    }

    /// Enqueues a request arriving at `now`, then dispatches.
    pub fn arrive(&mut self, now: f64, demand: Demand) {
        let req = Request::new(RequestId(self.next_id), now, demand);
        self.next_id += 1;
        self.interval_arrivals += 1;
        self.queue.push_back(req);
        self.dispatch(now);
    }

    /// Earliest pending completion time — a linear scan over all servers.
    pub fn next_completion(&self) -> Option<f64> {
        self.servers
            .iter()
            .filter_map(|s| s.in_flight.as_ref().map(|f| f.finish))
            .min_by(f64::total_cmp)
    }

    /// Processes all completions up to and including time `to`.
    pub fn advance(&mut self, to: f64) {
        while let Some(t) = self.next_completion() {
            if t > to {
                break;
            }
            self.complete_one(t);
        }
    }

    /// Like [`ReferenceNode::advance`], appending completion times to `out`.
    pub fn advance_collect(&mut self, to: f64, out: &mut Vec<f64>) {
        while let Some(t) = self.next_completion() {
            if t > to {
                break;
            }
            self.complete_one(t);
            out.push(t);
        }
    }

    fn complete_one(&mut self, t: f64) {
        // The float-equality re-scan PR 3 removed: find the server whose
        // in-flight finish equals the minimum found by `next_completion`.
        let idx = self
            .servers
            .iter()
            .position(|s| s.in_flight.as_ref().is_some_and(|f| f.finish == t))
            .expect("completion time came from a server");
        let fl = self.servers[idx].in_flight.take().expect("server busy");
        self.servers[idx].busy_in_interval += t - fl.started.max(self.interval_start);
        self.servers[idx].available_at = t;
        let latency = fl.req.age(t);
        assert!(
            latency.is_finite() && latency >= 0.0,
            "invalid latency: {latency}"
        );
        self.samples.push(latency);
        self.interval_completions += 1;
        self.total_completed += 1;
        self.dispatch(t);
    }

    fn dispatch(&mut self, now: f64) {
        loop {
            if let Some(t) = self.timeout_s {
                while self.queue.front().is_some_and(|r| r.age(now) > t) {
                    self.queue.pop_front();
                    self.samples.push(t);
                    self.interval_timeouts += 1;
                }
            }
            if self.queue.is_empty() {
                return;
            }
            // Full scan for the fastest free server whose stall has elapsed.
            let best = self
                .servers
                .iter_mut()
                .filter(|s| s.in_flight.is_none() && s.available_at <= now)
                .max_by(|a, b| {
                    (a.spec.speed / a.spec.slowdown).total_cmp(&(b.spec.speed / b.spec.slowdown))
                });
            let Some(server) = best else { return };
            let req = self.queue.pop_front().expect("queue non-empty");
            let service = server.service_time(&req);
            server.in_flight = Some(InFlight {
                req,
                started: now,
                finish: now + service,
            });
        }
    }

    /// Starts work that queued during a reconfiguration stall.
    pub fn kick(&mut self, t: f64) {
        self.dispatch(t);
    }

    /// Closes the interval at `t_end`, returning its statistics
    /// (allocates the per-server busy vector, as the original did).
    pub fn end_interval(&mut self, t_end: f64, p: f64) -> NodeInterval {
        for s in &mut self.servers {
            if let Some(fl) = &s.in_flight {
                s.busy_in_interval += t_end - fl.started.max(self.interval_start);
            }
        }
        let dur = (t_end - self.interval_start).max(f64::EPSILON);
        let busy: Vec<f64> = self
            .servers
            .iter()
            .map(|s| (s.busy_in_interval / dur).clamp(0.0, 1.0))
            .collect();
        let n = self.samples.len();
        let (tail, mean) = if n == 0 {
            (None, None)
        } else {
            let mean = self.samples.iter().sum::<f64>() / n as f64;
            let tail = percentile_sort(&mut self.samples, p);
            self.samples.clear();
            (tail, Some(mean))
        };
        let tail = tail.unwrap_or_else(|| self.oldest_age(t_end));
        NodeInterval {
            arrivals: self.interval_arrivals,
            completions: self.interval_completions,
            timeouts: self.interval_timeouts,
            tail_latency_s: tail,
            mean_latency_s: mean.unwrap_or(0.0),
            busy,
            queue_len: self.queue.len(),
        }
    }

    fn oldest_age(&self, now: f64) -> f64 {
        let queued = self.queue.front().map(|r| r.age(now));
        let in_flight = self
            .servers
            .iter()
            .filter_map(|s| s.in_flight.as_ref().map(|f| f.req.age(now)))
            .max_by(f64::total_cmp);
        match (queued, in_flight) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 0.0,
        }
    }
}

impl Default for ReferenceNode {
    fn default() -> Self {
        Self::new()
    }
}

fn remaining_fraction(started: f64, finish: f64, now: f64) -> f64 {
    let total = finish - started;
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - ((now - started) / total).clamp(0.0, 1.0)
}

/// The pre-PR3 closed-loop thinking pool: a plain `Vec` of absolute expiry
/// times with an O(n) scan per pop and per retirement — exactly what
/// `Engine::run_events_closed` used before the binary-heap
/// [`ThinkPool`](crate::ThinkPool).
#[derive(Debug, Clone, Default)]
pub struct ReferenceThinkPool {
    thinking: Vec<f64>,
}

impl ReferenceThinkPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients currently thinking.
    pub fn len(&self) -> usize {
        self.thinking.len()
    }

    /// Whether no client is thinking.
    pub fn is_empty(&self) -> bool {
        self.thinking.is_empty()
    }

    /// Adds a client whose think timer expires at `expiry`.
    pub fn push(&mut self, expiry: f64) {
        self.thinking.push(expiry);
    }

    /// Earliest think expiry (linear scan).
    pub fn peek_min(&self) -> Option<f64> {
        self.thinking.iter().copied().min_by(f64::total_cmp)
    }

    /// Removes and returns the earliest expiry (linear scan + swap-remove).
    pub fn pop_min(&mut self) -> Option<f64> {
        let idx = self
            .thinking
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)?;
        Some(self.thinking.swap_remove(idx))
    }

    /// Retires the `k` clients that would submit last, one O(n) max-scan at
    /// a time (the original shrink loop).
    pub fn retire_latest(&mut self, k: usize) {
        for _ in 0..k {
            let Some((idx, _)) = self
                .thinking
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
            else {
                return;
            };
            self.thinking.swap_remove(idx);
        }
    }
}

#[derive(Debug, Clone)]
struct HeapInFlight {
    req: Request,
    /// When the current execution (re)started.
    started: f64,
    /// Completion time under the current spec.
    finish: f64,
}

#[derive(Debug, Clone)]
struct HeapServer {
    spec: ServerSpec,
    /// Effective dispatch speed, `spec.speed / spec.slowdown`.
    eff: f64,
    /// Earliest time this server may start (end of a reconfiguration stall).
    available_at: f64,
    in_flight: Option<HeapInFlight>,
    busy_in_interval: f64,
}

impl HeapServer {
    fn service_time(&self, req: &Request) -> f64 {
        (req.work_left / self.spec.speed + req.mem_left) * self.spec.slowdown
    }
}

/// Pending-completion heap entry; min-heap order on `(finish, server)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapCompletion {
    finish: TotalF64,
    server: usize,
}

/// Free-server heap entry; max-heap order on `(eff, server)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapFreeServer {
    eff: TotalF64,
    server: usize,
}

/// The PR 3/4-era FIFO multi-server queueing node, frozen verbatim: pending
/// completions in a `(finish, server)` min-heap **and free servers in an
/// effective-speed max-heap** with a stalled side-`Vec` — the O(log n)
/// dispatch path PR 5 replaced with speed-class bitmap free lists.
///
/// API mirrors [`ServiceNode`](crate::ServiceNode) exactly; see that type
/// for semantics. Kept only for differential tests
/// (`tests/dispatch_equivalence.rs`) and the `repro bench` PR 5 cells.
#[derive(Debug, Clone)]
pub struct HeapNode {
    queue: VecDeque<Request>,
    servers: Vec<HeapServer>,
    /// Min-heap of pending completions, one entry per busy server.
    completions: BinaryHeap<Reverse<HeapCompletion>>,
    /// Max-heap of free servers whose reconfiguration stall has elapsed.
    free: BinaryHeap<HeapFreeServer>,
    /// Free servers not (yet) proven eligible (see
    /// [`ServiceNode`](crate::ServiceNode) for the protocol).
    stalled: Vec<usize>,
    /// Number of busy servers (kept incrementally).
    in_flight_count: usize,
    recorder: LatencyRecorder,
    /// Reused buffer for preempted in-flight requests.
    preempt_scratch: Vec<Request>,
    next_id: u64,
    interval_start: f64,
    interval_arrivals: usize,
    interval_completions: usize,
    interval_timeouts: usize,
    total_completed: u64,
    /// Client-side request timeout.
    timeout_s: Option<f64>,
}

impl HeapNode {
    /// Creates a node with no servers (configure before use).
    pub fn new() -> Self {
        HeapNode {
            queue: VecDeque::new(),
            servers: Vec::new(),
            completions: BinaryHeap::new(),
            free: BinaryHeap::new(),
            stalled: Vec::new(),
            in_flight_count: 0,
            recorder: LatencyRecorder::new(),
            preempt_scratch: Vec::new(),
            next_id: 0,
            interval_start: 0.0,
            interval_arrivals: 0,
            interval_completions: 0,
            interval_timeouts: 0,
            total_completed: 0,
            timeout_s: None,
        }
    }

    /// Sets the client-side request timeout (`None` = patient clients).
    ///
    /// # Panics
    ///
    /// Panics if the timeout is not strictly positive.
    pub fn set_timeout(&mut self, timeout_s: Option<f64>) {
        if let Some(t) = timeout_s {
            assert!(t > 0.0, "timeout must be positive: {t}");
        }
        self.timeout_s = timeout_s;
    }

    /// Number of servers currently configured.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Requests waiting in the queue (excluding in-flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently being serviced (O(1)).
    pub fn in_flight(&self) -> usize {
        self.in_flight_count
    }

    /// Total requests completed since construction.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Reconfigures the server set at time `now` (see
    /// [`ServiceNode::reconfigure`](crate::ServiceNode::reconfigure)).
    ///
    /// # Panics
    ///
    /// Panics as [`ServiceNode::reconfigure`](crate::ServiceNode::reconfigure)
    /// does.
    pub fn reconfigure(&mut self, now: f64, specs: &[ServerSpec], preempt: bool, stall_s: f64) {
        assert!(!specs.is_empty(), "service node needs at least one server");
        for s in specs {
            assert!(s.speed > 0.0, "server speed must be positive: {s:?}");
            assert!(s.slowdown >= 1.0, "slowdown must be ≥ 1: {s:?}");
        }
        if preempt {
            self.preempt_all(now);
            self.servers.clear();
            self.servers.extend(specs.iter().map(|&spec| HeapServer {
                spec,
                eff: spec.speed / spec.slowdown,
                available_at: now + stall_s,
                in_flight: None,
                busy_in_interval: 0.0,
            }));
        } else {
            assert_eq!(
                specs.len(),
                self.servers.len(),
                "DVFS-only reconfiguration cannot change the server count"
            );
            let interval_start = self.interval_start;
            for (server, &spec) in self.servers.iter_mut().zip(specs) {
                if let Some(fl) = server.in_flight.as_mut() {
                    let left = remaining_fraction(fl.started, fl.finish, now);
                    fl.req.work_left *= left;
                    fl.req.mem_left *= left;
                    server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                    fl.started = now;
                    let t = (fl.req.work_left / spec.speed + fl.req.mem_left) * spec.slowdown;
                    fl.finish = (now + stall_s) + t;
                }
                server.spec = spec;
                server.eff = spec.speed / spec.slowdown;
                server.available_at = server.available_at.max(now + stall_s);
            }
        }
        self.rebuild_index();
        self.dispatch(now + stall_s);
    }

    /// Rebuilds the completion heap, free heap and stall list from the
    /// server array (O(n log n) — the cost PR 5 removed).
    fn rebuild_index(&mut self) {
        self.completions.clear();
        self.free.clear();
        self.stalled.clear();
        self.in_flight_count = 0;
        for (i, s) in self.servers.iter().enumerate() {
            match &s.in_flight {
                Some(fl) => {
                    self.completions.push(Reverse(HeapCompletion {
                        finish: TotalF64(fl.finish),
                        server: i,
                    }));
                    self.in_flight_count += 1;
                }
                None => self.stalled.push(i),
            }
        }
    }

    fn preempt_all(&mut self, now: f64) {
        let interval_start = self.interval_start;
        let mut preempted = std::mem::take(&mut self.preempt_scratch);
        preempted.clear();
        for server in &mut self.servers {
            if let Some(mut fl) = server.in_flight.take() {
                server.busy_in_interval += (now - fl.started.max(interval_start)).max(0.0);
                let left = remaining_fraction(fl.started, fl.finish, now);
                fl.req.work_left *= left;
                fl.req.mem_left *= left;
                preempted.push(fl.req);
            }
        }
        preempted.sort_by_key(|r| r.id);
        for req in preempted.drain(..).rev() {
            self.queue.push_front(req);
        }
        self.preempt_scratch = preempted;
    }

    /// Marks the start of a monitoring interval at time `t`.
    pub fn begin_interval(&mut self, t: f64) {
        self.interval_start = t;
        self.interval_arrivals = 0;
        self.interval_completions = 0;
        self.interval_timeouts = 0;
        for s in &mut self.servers {
            s.busy_in_interval = 0.0;
        }
    }

    /// Enqueues a request arriving at `now`, then dispatches.
    pub fn arrive(&mut self, now: f64, demand: Demand) {
        let req = Request::new(RequestId(self.next_id), now, demand);
        self.next_id += 1;
        self.interval_arrivals += 1;
        self.queue.push_back(req);
        self.dispatch(now);
    }

    /// Earliest pending completion time, if any request is in flight.
    pub fn next_completion(&self) -> Option<f64> {
        self.completions.peek().map(|Reverse(c)| c.finish.0)
    }

    /// Processes all completions up to and including time `to`.
    pub fn advance(&mut self, to: f64) {
        while let Some(&Reverse(c)) = self.completions.peek() {
            if c.finish.0 > to {
                break;
            }
            self.completions.pop();
            self.complete_server(c.server, c.finish.0);
        }
    }

    /// Like [`HeapNode::advance`], appending completion times to `out`.
    pub fn advance_collect(&mut self, to: f64, out: &mut Vec<f64>) {
        while let Some(&Reverse(c)) = self.completions.peek() {
            if c.finish.0 > to {
                break;
            }
            self.completions.pop();
            self.complete_server(c.server, c.finish.0);
            out.push(c.finish.0);
        }
    }

    fn complete_server(&mut self, idx: usize, t: f64) {
        let fl = self.servers[idx].in_flight.take().expect("server busy");
        self.servers[idx].busy_in_interval += t - fl.started.max(self.interval_start);
        self.servers[idx].available_at = t;
        self.in_flight_count -= 1;
        self.free.push(HeapFreeServer {
            eff: TotalF64(self.servers[idx].eff),
            server: idx,
        });
        self.recorder.record(fl.req.age(t));
        self.interval_completions += 1;
        self.total_completed += 1;
        self.dispatch(t);
    }

    /// Promotes stalled servers whose `available_at` has passed into the
    /// free heap — the per-server `Vec` scan PR 5 turned into a word-wise
    /// bitmap merge.
    fn promote_stalled(&mut self, now: f64) {
        let mut i = 0;
        while i < self.stalled.len() {
            let idx = self.stalled[i];
            if self.servers[idx].available_at <= now {
                self.free.push(HeapFreeServer {
                    eff: TotalF64(self.servers[idx].eff),
                    server: idx,
                });
                self.stalled.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn dispatch(&mut self, now: f64) {
        if let Some(t) = self.timeout_s {
            while self.queue.front().is_some_and(|r| r.age(now) > t) {
                self.queue.pop_front();
                self.recorder.record(t);
                self.interval_timeouts += 1;
            }
        }
        if self.queue.is_empty() {
            return;
        }
        if !self.stalled.is_empty() {
            self.promote_stalled(now);
        }
        while !self.queue.is_empty() {
            let Some(HeapFreeServer { server: idx, .. }) = self.free.pop() else {
                return;
            };
            if self.servers[idx].available_at > now {
                self.stalled.push(idx);
                continue;
            }
            let req = self.queue.pop_front().expect("queue non-empty");
            let server = &mut self.servers[idx];
            let service = server.service_time(&req);
            let finish = now + service;
            server.in_flight = Some(HeapInFlight {
                req,
                started: now,
                finish,
            });
            self.in_flight_count += 1;
            self.completions.push(Reverse(HeapCompletion {
                finish: TotalF64(finish),
                server: idx,
            }));
        }
    }

    /// Starts work that queued during a reconfiguration stall.
    pub fn kick(&mut self, t: f64) {
        self.dispatch(t);
    }

    /// Closes the interval at `t_end`, returning its statistics.
    pub fn end_interval(&mut self, t_end: f64, p: f64) -> NodeInterval {
        for s in &mut self.servers {
            if let Some(fl) = &s.in_flight {
                s.busy_in_interval += t_end - fl.started.max(self.interval_start);
            }
        }
        let dur = (t_end - self.interval_start).max(f64::EPSILON);
        let busy: Vec<f64> = self
            .servers
            .iter()
            .map(|s| (s.busy_in_interval / dur).clamp(0.0, 1.0))
            .collect();
        let (tail, mean, _n) = self.recorder.take_interval(p);
        let tail = tail.unwrap_or_else(|| self.oldest_age(t_end));
        NodeInterval {
            arrivals: self.interval_arrivals,
            completions: self.interval_completions,
            timeouts: self.interval_timeouts,
            tail_latency_s: tail,
            mean_latency_s: mean.unwrap_or(0.0),
            busy,
            queue_len: self.queue.len(),
        }
    }

    fn oldest_age(&self, now: f64) -> f64 {
        let queued = self.queue.front().map(|r| r.age(now));
        let in_flight = self
            .servers
            .iter()
            .filter_map(|s| s.in_flight.as_ref().map(|f| f.req.age(now)))
            .max_by(f64::total_cmp);
        match (queued, in_flight) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 0.0,
        }
    }
}

impl Default for HeapNode {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// PR 5-era event cores, frozen by PR 6's calendar queue.
// ---------------------------------------------------------------------------

/// Maps a finish time onto a `u64` whose unsigned order is exactly
/// [`f64::total_cmp`] order (frozen copy of the PR 5 key mapping; the
/// calendar queue uses the same bits, which is why their pop orders can
/// agree bit-for-bit).
#[inline]
fn key_of(finish: f64) -> u64 {
    let b = finish.to_bits();
    b ^ ((((b as i64) >> 63) as u64) >> 1) ^ (1u64 << 63)
}

/// Inverse of [`key_of`].
#[inline]
fn finish_of(key: u64) -> f64 {
    let b = if key >> 63 == 1 {
        key ^ (1u64 << 63)
    } else {
        !key
    };
    f64::from_bits(b)
}

/// Packs `(finish, server)` into one `u128`: key in the high 64 bits,
/// server index in the low 64, so entry order = (finish, server) order.
#[inline]
fn pack(finish: f64, server: usize) -> u128 {
    ((key_of(finish) as u128) << 64) | server as u128
}

/// The PR 5 pending-completion index, frozen verbatim: a binary min-heap
/// of packed-`u128` `(finish, server)` entries — one `u128` comparison per
/// sift step, O(log n) per push/pop.
///
/// Production code now uses the [`CalendarQueue`](crate::CalendarQueue)
/// (O(1) amortized); this copy anchors the `BENCH_PR6.json` baseline and
/// the `tests/calendar_equivalence.rs` differential battery.
#[derive(Debug, Clone, Default)]
pub struct PackedHeap {
    entries: BinaryHeap<Reverse<u128>>,
}

impl PackedHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Earliest pending finish time, if any.
    pub fn peek_finish(&self) -> Option<f64> {
        self.entries
            .peek()
            .map(|&Reverse(e)| finish_of((e >> 64) as u64))
    }

    /// Inserts the completion `(finish, server)` (O(log n)).
    pub fn push(&mut self, finish: f64, server: usize) {
        self.entries.push(Reverse(pack(finish, server)));
    }

    /// Pops the earliest completion if its finish time is ≤ `to` (under
    /// `f64` `>` semantics: a NaN root never compares later).
    pub fn pop_if_le(&mut self, to: f64) -> Option<(f64, usize)> {
        let &Reverse(root) = self.entries.peek()?;
        let finish = finish_of((root >> 64) as u64);
        if finish > to {
            return None;
        }
        self.entries.pop();
        Some((finish, root as u64 as usize))
    }

    /// Rebuilds the heap from scratch entries, heapified in O(n); reuses
    /// the heap's allocation and leaves `scratch` cleared.
    pub fn rebuild_from(&mut self, scratch: &mut Vec<(f64, usize)>) {
        let mut buf = std::mem::take(&mut self.entries).into_vec();
        buf.clear();
        buf.extend(scratch.iter().map(|&(f, s)| Reverse(pack(f, s))));
        scratch.clear();
        self.entries = BinaryHeap::from(buf);
    }

    /// The busy servers, in unspecified (heap) order.
    pub fn servers(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&Reverse(e)| e as u64 as usize)
    }

    /// Moves every `(finish, server)` entry into `out` (unspecified order)
    /// and empties the heap.
    pub fn drain_unordered(&mut self, out: &mut Vec<(f64, usize)>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .map(|&Reverse(e)| (finish_of((e >> 64) as u64), e as u64 as usize)),
        );
        self.entries.clear();
    }
}

impl CompletionQueue for PackedHeap {
    #[inline]
    fn len(&self) -> usize {
        PackedHeap::len(self)
    }
    #[inline]
    fn peek_finish(&self) -> Option<f64> {
        PackedHeap::peek_finish(self)
    }
    #[inline]
    fn push(&mut self, finish: f64, server: usize) {
        PackedHeap::push(self, finish, server);
    }
    #[inline]
    fn pop_if_le(&mut self, to: f64) -> Option<(f64, usize)> {
        PackedHeap::pop_if_le(self, to)
    }
    fn rebuild_from(&mut self, scratch: &mut Vec<(f64, usize)>) {
        PackedHeap::rebuild_from(self, scratch);
    }
    fn servers(&self) -> impl Iterator<Item = usize> + '_ {
        PackedHeap::servers(self)
    }
    fn drain_unordered(&mut self, out: &mut Vec<(f64, usize)>) {
        PackedHeap::drain_unordered(self, out);
    }
}

/// The production node body instantiated over the frozen [`PackedHeap`]:
/// a bit-identical PR 5-era service node where *only* the completion index
/// differs from [`ServiceNode`](crate::ServiceNode). This is the baseline
/// the `BENCH_PR6.json` matrix races.
pub type PackedHeapNode = QueuedNode<PackedHeap>;

/// The PR 3–5 closed-loop thinking pool, frozen verbatim: a binary
/// min-heap of expiry times, O(log n) push/pop and one O(n) selection for
/// `retire_latest`. Production code now uses the calendar-backed
/// [`ThinkPool`](crate::ThinkPool).
#[derive(Debug, Clone, Default)]
pub struct HeapThinkPool {
    heap: BinaryHeap<Reverse<TotalF64>>,
}

impl HeapThinkPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients currently thinking.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no client is thinking.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Adds a client whose think timer expires at `expiry` (O(log n)).
    pub fn push(&mut self, expiry: f64) {
        self.heap.push(Reverse(TotalF64(expiry)));
    }

    /// Earliest think expiry (O(1)).
    pub fn peek_min(&self) -> Option<f64> {
        self.heap.peek().map(|&Reverse(TotalF64(x))| x)
    }

    /// Removes and returns the earliest expiry (O(log n)).
    pub fn pop_min(&mut self) -> Option<f64> {
        self.heap.pop().map(|Reverse(TotalF64(x))| x)
    }

    /// Retires the `k` clients that would submit last (the largest
    /// expiries) with one O(n) selection pass.
    pub fn retire_latest(&mut self, k: usize) {
        if k == 0 {
            return;
        }
        if k >= self.heap.len() {
            self.heap.clear();
            return;
        }
        let mut v = std::mem::take(&mut self.heap).into_vec();
        v.select_nth_unstable(k - 1);
        v.drain(..k);
        self.heap = BinaryHeap::from(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipster_platform::{CoreKind, Frequency};

    fn spec(speed: f64) -> ServerSpec {
        ServerSpec {
            kind: CoreKind::Big,
            freq: Frequency::from_mhz(1000),
            speed,
            slowdown: 1.0,
        }
    }

    #[test]
    fn reference_node_basic_interval() {
        let mut n = ReferenceNode::new();
        n.reconfigure(0.0, &[spec(2.0)], true, 0.0);
        n.begin_interval(0.0);
        n.arrive(0.0, Demand::new(1.0, 0.5));
        n.advance(10.0);
        let iv = n.end_interval(10.0, 0.95);
        assert_eq!(iv.completions, 1);
        assert!((iv.tail_latency_s - 1.0).abs() < 1e-12);
        assert_eq!(n.total_completed(), 1);
        assert_eq!(n.num_servers(), 1);
    }

    #[test]
    fn percentile_sort_matches_convention() {
        assert_eq!(percentile_sort(&mut [], 0.5), None);
        assert_eq!(percentile_sort(&mut [7.0], 0.95), Some(7.0));
        let mut xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_sort(&mut xs, 0.5), Some(2.5));
    }

    #[test]
    fn reference_pool_scan_semantics() {
        let mut p = ReferenceThinkPool::new();
        for x in [3.0, 1.0, 2.0, 5.0, 4.0] {
            p.push(x);
        }
        assert_eq!(p.peek_min(), Some(1.0));
        assert_eq!(p.pop_min(), Some(1.0));
        p.retire_latest(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.peek_min(), Some(2.0));
        p.retire_latest(10);
        assert!(p.is_empty());
        assert_eq!(p.pop_min(), None);
    }
}
