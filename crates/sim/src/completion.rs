//! The pending-completion index: one `(finish, server)` event per busy
//! server, earliest finish (ties: lowest server index) first.
//!
//! Since PR 6 the production index is the [`CalendarQueue`] — rotating
//! time buckets with O(1) amortized push/pop and an O(1) cached minimum —
//! replacing the packed-`u128` binary heap of PR 5, which paid an
//! O(log n) sift per event. The queue stores the same packed entries (the
//! finish time mapped through the order-preserving [`f64::total_cmp`] bit
//! trick in the high 64 bits, the server index in the low 64), so the pop
//! order over distinct `(finish, server)` keys — and server indices make
//! every key distinct — is bit-for-bit the heap's: earliest finish first,
//! ties to the lowest server index.
//!
//! [`CompletionQueue`] is that index's API surface, kept exactly as the
//! PR 5 `CompletionHeap` exposed it. [`ServiceNode`](crate::ServiceNode)
//! is generic over it, which is how the frozen
//! [`PackedHeap`](crate::reference::PackedHeap) still powers a whole
//! PR 5-era node ([`reference::PackedHeapNode`](crate::reference::PackedHeapNode))
//! for the differential battery (`tests/calendar_equivalence.rs`) and the
//! `BENCH_PR6.json` matrix without duplicating the node.

use crate::calendar::CalendarQueue;

/// The pending-completion index API the service node dispatches through:
/// a min-queue of `(finish, server)` events keyed by
/// (`total_cmp`-mapped finish, server index).
///
/// Implemented by the production [`CalendarQueue`] (O(1) amortized) and
/// the frozen [`PackedHeap`](crate::reference::PackedHeap) (PR 5's binary
/// heap, O(log n)); both pop bit-identical sequences, so a node
/// instantiated with either produces the same simulation.
pub trait CompletionQueue: Clone + std::fmt::Debug + Default {
    /// Number of pending completions (= busy servers).
    fn len(&self) -> usize;

    /// Earliest pending finish time, if any.
    fn peek_finish(&self) -> Option<f64>;

    /// Inserts the completion `(finish, server)`.
    fn push(&mut self, finish: f64, server: usize);

    /// Pops the earliest completion if its finish time is ≤ `to` (under
    /// `f64` `>` semantics: a NaN root never compares later).
    fn pop_if_le(&mut self, to: f64) -> Option<(f64, usize)>;

    /// Rebuilds the queue from scratch entries in O(n), reusing
    /// allocations. `scratch` is left cleared for reuse.
    fn rebuild_from(&mut self, scratch: &mut Vec<(f64, usize)>);

    /// The busy servers, in unspecified order (one entry each).
    fn servers(&self) -> impl Iterator<Item = usize> + '_;

    /// Moves every `(finish, server)` entry into `out` (unspecified
    /// order) and empties the queue, in O(n) — reconfigurations drain the
    /// pending set, transform it, and rebuild it via
    /// [`rebuild_from`](CompletionQueue::rebuild_from).
    fn drain_unordered(&mut self, out: &mut Vec<(f64, usize)>);
}

impl CompletionQueue for CalendarQueue {
    #[inline]
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    #[inline]
    fn peek_finish(&self) -> Option<f64> {
        self.peek_min_time()
    }
    #[inline]
    fn push(&mut self, finish: f64, server: usize) {
        CalendarQueue::push(self, finish, server);
    }
    #[inline]
    fn pop_if_le(&mut self, to: f64) -> Option<(f64, usize)> {
        CalendarQueue::pop_if_le(self, to)
    }
    fn rebuild_from(&mut self, scratch: &mut Vec<(f64, usize)>) {
        self.rebuild_from_unpacked(scratch);
    }
    fn servers(&self) -> impl Iterator<Item = usize> + '_ {
        self.payloads()
    }
    fn drain_unordered(&mut self, out: &mut Vec<(f64, usize)>) {
        CalendarQueue::drain_unordered(self, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_finish_then_server_order() {
        let mut h = CalendarQueue::new();
        CompletionQueue::push(&mut h, 2.0, 7);
        CompletionQueue::push(&mut h, 1.0, 3);
        CompletionQueue::push(&mut h, 2.0, 1);
        CompletionQueue::push(&mut h, 1.0, 9);
        CompletionQueue::push(&mut h, 0.5, 4);
        let mut out = Vec::new();
        while let Some(e) = CompletionQueue::pop_if_le(&mut h, f64::INFINITY) {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![(0.5, 4), (1.0, 3), (1.0, 9), (2.0, 1), (2.0, 7)],
            "min finish first, ties to the lowest server"
        );
    }

    #[test]
    fn rebuild_matches_pushes() {
        let finishes = [5.0, 1.0, 4.0, 4.0, 2.0, 9.0, 0.25, 4.0];
        let mut pushed = CalendarQueue::new();
        for (s, &f) in finishes.iter().enumerate() {
            CompletionQueue::push(&mut pushed, f, s);
        }
        let mut scratch: Vec<(f64, usize)> =
            finishes.iter().copied().zip(0..finishes.len()).collect();
        let mut rebuilt = CalendarQueue::new();
        CompletionQueue::rebuild_from(&mut rebuilt, &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(
            CompletionQueue::len(&rebuilt),
            CompletionQueue::len(&pushed)
        );
        let mut servers: Vec<usize> = CompletionQueue::servers(&rebuilt).collect();
        servers.sort_unstable();
        assert_eq!(servers, (0..finishes.len()).collect::<Vec<_>>());
        loop {
            let a = CompletionQueue::pop_if_le(&mut pushed, f64::INFINITY);
            let b = CompletionQueue::pop_if_le(&mut rebuilt, f64::INFINITY);
            assert_eq!(a, b, "identical pop sequences");
            if a.is_none() {
                break;
            }
        }
    }
}
