//! Packed-key min-heap of pending completions.
//!
//! The completion index is inherently a priority queue — O(log n) — but
//! its constants matter at 256–1024 servers, where it holds one entry per
//! busy server and every event pays a pop or a push. This heap packs each
//! entry into one `u128` — the high 64 bits are the finish time mapped
//! through the order-preserving [`f64::total_cmp`] bit trick, the low 64
//! bits the server index — so every probe during a sift is a single
//! integer compare instead of a two-field struct compare that re-derives
//! the `total_cmp` mapping each time. The sift machinery itself is
//! `std`'s `BinaryHeap` (Floyd sift-down, already optimal for the
//! pop-heavy pattern here).
//!
//! Pop order over distinct `(finish, server)` keys — and server indices
//! make every key distinct — is the min for any correct priority queue, so
//! traces are bit-identical to the `BinaryHeap<Reverse<(TotalF64, usize)>>`
//! this replaces (covered by the differential tests against both frozen
//! nodes in [`crate::reference`]).

/// Maps a finish time to a `u64` whose unsigned order equals
/// [`f64::total_cmp`] order. Exact for every float (including negatives,
/// zeros and NaNs), so equivalence holds under arbitrary test inputs.
#[inline]
fn key_of(finish: f64) -> u64 {
    let b = finish.to_bits();
    b ^ ((((b as i64) >> 63) as u64) >> 1) ^ (1u64 << 63)
}

/// Inverse of [`key_of`] (bit-exact round trip).
#[inline]
fn finish_of(key: u64) -> f64 {
    let b = if key >> 63 == 1 {
        key ^ (1u64 << 63)
    } else {
        !key
    };
    f64::from_bits(b)
}

#[inline]
fn pack(finish: f64, server: usize) -> u128 {
    ((key_of(finish) as u128) << 64) | server as u128
}

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pending-completion min-heap: one `(finish, server)` entry per busy
/// server, earliest finish (ties: lowest server index) at the root.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompletionHeap {
    entries: BinaryHeap<Reverse<u128>>,
}

impl CompletionHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending completions (= busy servers).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Earliest pending finish time, if any.
    #[inline]
    pub fn peek_finish(&self) -> Option<f64> {
        self.entries
            .peek()
            .map(|&Reverse(e)| finish_of((e >> 64) as u64))
    }

    /// Inserts the completion `(finish, server)`. O(log n).
    #[inline]
    pub fn push(&mut self, finish: f64, server: usize) {
        self.entries.push(Reverse(pack(finish, server)));
    }

    /// Pops the earliest completion if its finish time is ≤ `to` (under
    /// `f64` `>` semantics: a NaN root never compares later, matching the
    /// scan/heap implementations this replaces).
    #[inline]
    pub fn pop_if_le(&mut self, to: f64) -> Option<(f64, usize)> {
        let &Reverse(root) = self.entries.peek()?;
        let finish = finish_of((root >> 64) as u64);
        if finish > to {
            return None;
        }
        self.entries.pop();
        Some((finish, root as u64 as usize))
    }

    /// Rebuilds the heap from scratch entries in O(n) (heapify), reusing
    /// both allocations. `scratch` is left cleared for reuse.
    pub fn rebuild_from(&mut self, scratch: &mut Vec<(f64, usize)>) {
        let mut buf = std::mem::take(&mut self.entries).into_vec();
        buf.clear();
        buf.extend(scratch.iter().map(|&(f, s)| Reverse(pack(f, s))));
        scratch.clear();
        self.entries = BinaryHeap::from(buf);
    }

    /// The busy servers, in unspecified order (one entry each).
    pub fn servers(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&Reverse(e)| e as u64 as usize)
    }

    /// Moves every `(finish, server)` entry into `out` (unspecified order)
    /// and empties the heap, in O(n) — reconfigurations drain the pending
    /// set, transform it, and heapify it back via
    /// [`rebuild_from`](CompletionHeap::rebuild_from).
    pub fn drain_unordered(&mut self, out: &mut Vec<(f64, usize)>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .map(|&Reverse(e)| (finish_of((e >> 64) as u64), e as u64 as usize)),
        );
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_order() {
        let xs = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            1.0,
            1e300,
            f64::INFINITY,
            f64::NAN,
        ];
        for &x in &xs {
            assert_eq!(finish_of(key_of(x)).to_bits(), x.to_bits(), "{x}");
        }
        for w in xs.windows(2) {
            assert!(key_of(w[0]) < key_of(w[1]), "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn pops_in_finish_then_server_order() {
        let mut h = CompletionHeap::new();
        h.push(2.0, 7);
        h.push(1.0, 3);
        h.push(2.0, 1);
        h.push(1.0, 9);
        h.push(0.5, 4);
        let mut out = Vec::new();
        while let Some(e) = h.pop_if_le(f64::INFINITY) {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![(0.5, 4), (1.0, 3), (1.0, 9), (2.0, 1), (2.0, 7)],
            "min finish first, ties to the lowest server"
        );
    }

    #[test]
    fn pop_if_le_respects_bound() {
        let mut h = CompletionHeap::new();
        h.push(1.0, 0);
        h.push(3.0, 1);
        assert_eq!(h.pop_if_le(0.5), None);
        assert_eq!(h.pop_if_le(1.0), Some((1.0, 0)));
        assert_eq!(h.pop_if_le(2.0), None);
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek_finish(), Some(3.0));
    }

    #[test]
    fn rebuild_matches_pushes() {
        let finishes = [5.0, 1.0, 4.0, 4.0, 2.0, 9.0, 0.25, 4.0];
        let mut pushed = CompletionHeap::new();
        for (s, &f) in finishes.iter().enumerate() {
            pushed.push(f, s);
        }
        let mut scratch: Vec<(f64, usize)> =
            finishes.iter().copied().zip(0..finishes.len()).collect();
        let mut rebuilt = CompletionHeap::new();
        rebuilt.rebuild_from(&mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(rebuilt.len(), pushed.len());
        let mut servers: Vec<usize> = rebuilt.servers().collect();
        servers.sort_unstable();
        assert_eq!(servers, (0..finishes.len()).collect::<Vec<_>>());
        loop {
            let a = pushed.pop_if_le(f64::INFINITY);
            let b = rebuilt.pop_if_le(f64::INFINITY);
            assert_eq!(a, b, "identical pop sequences");
            if a.is_none() {
                break;
            }
        }
    }
}
