//! Time-series traces of simulation runs and summary metrics.
//!
//! Every experiment harness appends each interval's [`IntervalStats`] to a
//! [`Trace`], then derives the paper's summary metrics: QoS guarantee (the
//! percentage of samples meeting the target, Table 3), mean QoS tardiness
//! over violating samples, total energy, and migration counts.

use crate::engine::IntervalStats;
use crate::request::QosTarget;

/// A recorded sequence of monitoring intervals.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    intervals: Vec<IntervalStats>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with room for `intervals` entries, so a
    /// driver that knows its run length appends without reallocating.
    pub fn with_capacity(intervals: usize) -> Self {
        Trace {
            intervals: Vec::with_capacity(intervals),
        }
    }

    /// Appends one interval.
    pub fn push(&mut self, s: IntervalStats) {
        self.intervals.push(s);
    }

    /// The recorded intervals.
    pub fn intervals(&self) -> &[IntervalStats] {
        &self.intervals
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// QoS guarantee: the percentage of intervals whose tail latency met
    /// the target (Table 3's "QoS Guarantee"). Returns 100 for an empty
    /// trace.
    pub fn qos_guarantee_pct(&self, qos: QosTarget) -> f64 {
        if self.intervals.is_empty() {
            return 100.0;
        }
        let met = self
            .intervals
            .iter()
            .filter(|s| !qos.violated(s.tail_latency_s))
            .count();
        met as f64 / self.intervals.len() as f64 * 100.0
    }

    /// Mean QoS tardiness over *violating* samples only (Table 3's "QoS
    /// Tardiness"); `None` when no interval violated.
    pub fn mean_violation_tardiness(&self, qos: QosTarget) -> Option<f64> {
        let v: Vec<f64> = self
            .intervals
            .iter()
            .filter(|s| qos.violated(s.tail_latency_s))
            .map(|s| qos.tardiness(s.tail_latency_s))
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Total energy over the trace, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.intervals.iter().map(|s| s.energy_j).sum()
    }

    /// Mean system power over the trace, watts.
    pub fn mean_power_w(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let t: f64 = self.intervals.iter().map(|s| s.duration_s).sum();
        self.total_energy_j() / t
    }

    /// Total LC core migrations (sum of per-interval migrated cores).
    pub fn total_migrations(&self) -> usize {
        self.intervals.iter().map(|s| s.migrated_cores).sum()
    }

    /// Total completed requests.
    pub fn total_completions(&self) -> usize {
        self.intervals.iter().map(|s| s.completions).sum()
    }

    /// Mean aggregate batch IPS (big + small) over intervals with valid
    /// counters.
    pub fn mean_batch_ips(&self) -> f64 {
        let valid: Vec<f64> = self
            .intervals
            .iter()
            .filter(|s| s.counters_valid)
            .map(|s| s.batch_ips_big + s.batch_ips_small)
            .collect();
        if valid.is_empty() {
            0.0
        } else {
            valid.iter().sum::<f64>() / valid.len() as f64
        }
    }

    /// QoS guarantee per consecutive window of `window` intervals (Fig. 9's
    /// 100-second buckets when intervals are 1 s).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn windowed_qos_guarantee_pct(&self, qos: QosTarget, window: usize) -> Vec<f64> {
        assert!(window > 0, "window must be positive");
        self.intervals
            .chunks(window)
            .map(|chunk| {
                let met = chunk
                    .iter()
                    .filter(|s| !qos.violated(s.tail_latency_s))
                    .count();
                met as f64 / chunk.len() as f64 * 100.0
            })
            .collect()
    }

    /// Serializes the trace as CSV (one row per interval) for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(csv_header());
        out.push('\n');
        for s in &self.intervals {
            out.push_str(&csv_row(s));
            out.push('\n');
        }
        out
    }
}

/// The column header matching [`csv_row`] (no trailing newline).
///
/// Shared by [`Trace::to_csv`] and streaming CSV telemetry sinks so all
/// trace CSVs in the workspace carry the same schema.
pub fn csv_header() -> &'static str {
    "t,config,load_frac,offered_rps,throughput_rps,tail_ms,mean_ms,\
     power_w,energy_j,batch_ips_big,batch_ips_small,migrated,queue"
}

/// One interval as a [`csv_header`]-schema CSV row (no trailing newline).
pub fn csv_row(s: &IntervalStats) -> String {
    format!(
        "{:.1},{},{:.4},{:.1},{:.1},{:.3},{:.3},{:.3},{:.3},{:.0},{:.0},{},{}",
        s.start_s,
        s.config.lc,
        s.offered_load_frac,
        s.offered_rps,
        s.throughput_rps,
        s.tail_latency_s * 1e3,
        s.mean_latency_s * 1e3,
        s.power.total(),
        s.energy_j,
        s.batch_ips_big,
        s.batch_ips_small,
        s.migrated_cores,
        s.queue_len,
    )
}

impl FromIterator<IntervalStats> for Trace {
    fn from_iter<T: IntoIterator<Item = IntervalStats>>(iter: T) -> Self {
        Trace {
            intervals: iter.into_iter().collect(),
        }
    }
}

impl Extend<IntervalStats> for Trace {
    fn extend<T: IntoIterator<Item = IntervalStats>>(&mut self, iter: T) {
        self.intervals.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MachineConfig;
    use hipster_platform::{CoreConfig, Frequency, PowerBreakdown};

    fn stats(tail_ms: f64, energy: f64, migrated: usize) -> IntervalStats {
        let f = Frequency::from_mhz(1150);
        let fs = Frequency::from_mhz(650);
        IntervalStats {
            index: 0,
            start_s: 0.0,
            duration_s: 1.0,
            config: MachineConfig {
                lc: CoreConfig::new(2, 0, f, fs),
                big_freq: f,
                small_freq: fs,
                batch_enabled: false,
            },
            offered_load_frac: 0.5,
            offered_rps: 100.0,
            arrivals: 100,
            completions: 100,
            timeouts: 0,
            throughput_rps: 100.0,
            tail_latency_s: tail_ms / 1e3,
            mean_latency_s: tail_ms / 2e3,
            queue_len: 0,
            lc_busy: vec![0.5, 0.5],
            power: PowerBreakdown {
                big: energy * 0.6,
                small: energy * 0.2,
                rest: energy * 0.2,
            },
            energy_j: energy,
            batch_ips_big: 0.0,
            batch_ips_small: 0.0,
            counters_valid: true,
            migrated_cores: migrated,
        }
    }

    fn qos() -> QosTarget {
        QosTarget::new(0.95, 0.010)
    }

    #[test]
    fn qos_guarantee_counts_violations() {
        let t: Trace = vec![stats(5.0, 1.0, 0), stats(15.0, 1.0, 0), stats(8.0, 1.0, 0)]
            .into_iter()
            .collect();
        let g = t.qos_guarantee_pct(qos());
        assert!((g - 66.666).abs() < 0.01, "{g}");
    }

    #[test]
    fn tardiness_over_violations_only() {
        let t: Trace = vec![stats(5.0, 1.0, 0), stats(20.0, 1.0, 0), stats(30.0, 1.0, 0)]
            .into_iter()
            .collect();
        let tard = t.mean_violation_tardiness(qos()).unwrap();
        assert!((tard - 2.5).abs() < 1e-9, "{tard}");
    }

    #[test]
    fn tardiness_none_when_all_met() {
        let t: Trace = vec![stats(5.0, 1.0, 0)].into_iter().collect();
        assert_eq!(t.mean_violation_tardiness(qos()), None);
    }

    #[test]
    fn energy_and_migrations_accumulate() {
        let t: Trace = vec![stats(5.0, 2.0, 1), stats(5.0, 3.0, 2)]
            .into_iter()
            .collect();
        assert_eq!(t.total_energy_j(), 5.0);
        assert_eq!(t.total_migrations(), 3);
        assert!((t.mean_power_w() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn windowed_guarantee() {
        let t: Trace = vec![
            stats(5.0, 1.0, 0),
            stats(15.0, 1.0, 0),
            stats(5.0, 1.0, 0),
            stats(5.0, 1.0, 0),
        ]
        .into_iter()
        .collect();
        let w = t.windowed_qos_guarantee_pct(qos(), 2);
        assert_eq!(w, vec![50.0, 100.0]);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new();
        assert_eq!(t.qos_guarantee_pct(qos()), 100.0);
        assert_eq!(t.total_energy_j(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t: Trace = vec![stats(5.0, 1.0, 0)].into_iter().collect();
        let csv = t.to_csv();
        assert!(csv.starts_with("t,config"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("2B-1.15"));
    }
}
