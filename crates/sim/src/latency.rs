//! Latency collection and percentile computation.
//!
//! The QoS Monitor samples the tail latency (95th/99th/90th percentile) of
//! the requests completed in each monitoring interval. [`LatencyRecorder`]
//! collects exact per-interval samples into a buffer that is reused across
//! intervals; [`percentile`] computes exact order statistics by selection
//! (expected O(n), no full sort); [`P2Quantile`] is a constant-memory
//! streaming estimator used where exact collection would be wasteful
//! (long-horizon monitoring).

/// Exact percentile of a sample set using linear interpolation between order
/// statistics (the same convention as `numpy.percentile(..., 'linear')`).
///
/// Implemented with [`slice::select_nth_unstable_by`] rather than a full
/// sort: expected O(n) instead of O(n log n). Order statistics under the
/// `total_cmp` order are unique values, so the result is bit-identical to
/// the sort-based computation for the samples this crate produces (finite,
/// non-negative latencies; the lone exception is a `-0.0` sample at an
/// integral rank, where the sort-based interpolation formula would
/// normalize it to `+0.0`). `samples` is only *partially reordered* in
/// place — callers must not rely on it being sorted afterwards.
///
/// Returns `None` on an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use hipster_sim::percentile;
///
/// let mut xs = vec![4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&mut xs, 0.5), Some(2.5));
/// assert_eq!(percentile(&mut xs, 1.0), Some(4.0));
/// assert_eq!(percentile(&mut Vec::new(), 0.9), None);
/// ```
pub fn percentile(samples: &mut [f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "percentile {p} not in [0,1]");
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    if n == 1 {
        return Some(samples[0]);
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let (_, &mut lo_v, above) = samples.select_nth_unstable_by(lo, f64::total_cmp);
    let hi_v = if hi == lo {
        lo_v
    } else {
        // `hi == lo + 1`: the next order statistic is the minimum of the
        // partition above the pivot (all its elements are ≥ `lo_v`).
        above
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .expect("hi > lo implies a non-empty upper partition")
    };
    Some(lo_v + (hi_v - lo_v) * frac)
}

/// Collects latency samples for the current monitoring interval.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed-request latency (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `latency_s` is negative or not finite.
    pub fn record(&mut self, latency_s: f64) {
        assert!(
            latency_s.is_finite() && latency_s >= 0.0,
            "invalid latency: {latency_s}"
        );
        self.samples.push(latency_s);
    }

    /// Number of samples collected so far this interval.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been collected this interval.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Computes interval statistics and clears the recorder.
    ///
    /// Returns `(tail, mean, count)` where `tail` is the `p`-th percentile,
    /// computed by selection (see [`percentile`]). With no samples, both
    /// latencies are `None`. The sample buffer's capacity is retained, so a
    /// recorder that is reused interval after interval stops allocating once
    /// it has seen its high-water-mark completion count.
    pub fn take_interval(&mut self, p: f64) -> (Option<f64>, Option<f64>, usize) {
        let n = self.samples.len();
        if n == 0 {
            return (None, None, 0);
        }
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let tail = percentile(&mut self.samples, p);
        self.samples.clear();
        (tail, Some(mean), n)
    }
}

/// The P² (Jain & Chlamtac) streaming quantile estimator: estimates one
/// quantile in O(1) memory without storing samples.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Increments to desired positions.
    dn: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile {p} not in (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                self.q.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find cell k such that q[k] <= x < q[k+1], clamping extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate; `None` until at least one sample arrived.
    pub fn quantile(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut xs = self.initial.clone();
            return percentile(&mut xs, self.p);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn percentile_small_sets() {
        assert_eq!(percentile(&mut [], 0.5), None);
        assert_eq!(percentile(&mut [7.0], 0.95), Some(7.0));
        assert_eq!(percentile(&mut [1.0, 2.0], 0.0), Some(1.0));
        assert_eq!(percentile(&mut [1.0, 2.0], 1.0), Some(2.0));
        assert_eq!(percentile(&mut [1.0, 2.0], 0.5), Some(1.5));
    }

    #[test]
    fn percentile_uniform_grid() {
        let mut xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(percentile(&mut xs, 0.95), Some(95.0));
        assert_eq!(percentile(&mut xs, 0.90), Some(90.0));
    }

    #[test]
    fn recorder_interval_stats() {
        let mut r = LatencyRecorder::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            r.record(x);
        }
        let (tail, mean, n) = r.take_interval(1.0);
        assert_eq!(tail, Some(5.0));
        assert_eq!(mean, Some(3.0));
        assert_eq!(n, 5);
        // Cleared after take.
        assert!(r.is_empty());
        assert_eq!(r.take_interval(0.95), (None, None, 0));
    }

    #[test]
    fn p2_tracks_exponential_p95() {
        let mut est = P2Quantile::new(0.95);
        let mut rng = SimRng::seed(11);
        let mut exact = Vec::new();
        for _ in 0..100_000 {
            let x = -(1.0 - rng.uniform()).ln();
            est.observe(x);
            exact.push(x);
        }
        let e = percentile(&mut exact, 0.95).unwrap();
        let got = est.quantile().unwrap();
        assert!(
            (got - e).abs() / e < 0.05,
            "P² {got} vs exact {e} (expected within 5%)"
        );
    }

    #[test]
    fn p2_few_samples_falls_back_to_exact() {
        let mut est = P2Quantile::new(0.5);
        est.observe(3.0);
        est.observe(1.0);
        assert_eq!(est.quantile(), Some(2.0));
        assert_eq!(est.count(), 2);
    }

    #[test]
    fn p2_empty_is_none() {
        assert_eq!(P2Quantile::new(0.9).quantile(), None);
    }

    #[test]
    #[should_panic(expected = "invalid latency")]
    fn recorder_rejects_nan() {
        LatencyRecorder::new().record(f64::NAN);
    }
}
