//! The simulation engine: steps the machine one monitoring interval at a
//! time under a given configuration, producing the observations the Hipster
//! QoS Monitor consumes (tail latency, load, power, batch IPS).

use hipster_platform::{
    CoreConfig, CoreId, CoreKind, EnergyMeter, Frequency, PerfCounters, Platform, PowerBreakdown,
};

use crate::costs::{ContentionModel, ReconfigCosts};
use crate::dist::{BoundedPareto, Exponential};
use crate::fault::{FaultPlan, FaultSpec, FaultState, HedgeSpec};
use crate::request::{Demand, QosTarget};
use crate::rng::{Sampler, SimRng};
use crate::service::{ServerSpec, ServiceNode};
use crate::think::ThinkPool;
use crate::traits::{BatchProgram, ClosedLoop, LcModel, LoadPattern};

/// Default lognormal sigma of the per-interval background-interference
/// slowdown (see [`Engine::with_jitter`]): ±10% noise, roughly what OS
/// housekeeping costs an undisturbed Linux box.
pub const DEFAULT_JITTER_SIGMA: f64 = 0.10;

/// The full machine configuration applied for one monitoring interval.
///
/// `lc` is the configuration chosen by the policy for the latency-critical
/// workload; `big_freq`/`small_freq` are the *actual* cluster frequencies
/// (DVFS is per cluster, so batch jobs sharing a cluster with the LC
/// workload run at the LC frequency — the `lbm` effect of §4.3); and
/// `batch_enabled` controls whether the remaining cores run batch jobs
/// (HipsterCo) or idle (HipsterIn).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Cores + DVFS allocated to the latency-critical workload.
    pub lc: CoreConfig,
    /// Actual big-cluster frequency.
    pub big_freq: Frequency,
    /// Actual small-cluster frequency.
    pub small_freq: Frequency,
    /// Whether remaining cores run batch jobs.
    pub batch_enabled: bool,
}

impl MachineConfig {
    /// An interactive-only configuration (HipsterIn style): clusters the LC
    /// workload does not use are clocked to the platform minimum
    /// (Algorithm 2 lines 12–13).
    pub fn interactive(platform: &Platform, lc: CoreConfig) -> Self {
        let big = platform.cluster(CoreKind::Big);
        let small = platform.cluster(CoreKind::Small);
        MachineConfig {
            lc,
            big_freq: if lc.n_big > 0 {
                lc.big_freq
            } else {
                big.min_freq()
            },
            small_freq: if lc.n_small > 0 {
                lc.small_freq
            } else {
                small.min_freq()
            },
            batch_enabled: false,
        }
    }

    /// A collocated configuration (HipsterCo style): remaining cores run
    /// batch jobs; when the LC workload occupies a single core type, the
    /// other cluster is boosted to its maximum DVFS to accelerate the batch
    /// jobs (Algorithm 2 lines 8–11).
    pub fn collocated(platform: &Platform, lc: CoreConfig) -> Self {
        let big = platform.cluster(CoreKind::Big);
        let small = platform.cluster(CoreKind::Small);
        let (big_freq, small_freq) = match lc.single_core_type() {
            Some(CoreKind::Big) => (lc.big_freq, small.max_freq()),
            Some(CoreKind::Small) => (big.max_freq(), lc.small_freq),
            None => (
                if lc.n_big > 0 {
                    lc.big_freq
                } else {
                    big.min_freq()
                },
                if lc.n_small > 0 {
                    lc.small_freq
                } else {
                    small.min_freq()
                },
            ),
        };
        MachineConfig {
            lc,
            big_freq,
            small_freq,
            batch_enabled: true,
        }
    }
}

/// Everything the simulator measured during one monitoring interval.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalStats {
    /// Zero-based interval index.
    pub index: u64,
    /// Interval start time, seconds.
    pub start_s: f64,
    /// Interval length, seconds.
    pub duration_s: f64,
    /// The configuration in force.
    pub config: MachineConfig,
    /// Commanded load as a fraction of the workload's maximum.
    pub offered_load_frac: f64,
    /// Commanded load in requests per second.
    pub offered_rps: f64,
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests that completed.
    pub completions: usize,
    /// Requests dropped by client timeouts.
    pub timeouts: usize,
    /// Achieved throughput, requests per second.
    pub throughput_rps: f64,
    /// Tail latency at the workload's QoS percentile, seconds.
    pub tail_latency_s: f64,
    /// Mean latency of completed requests, seconds.
    pub mean_latency_s: f64,
    /// Queue length at interval end.
    pub queue_len: usize,
    /// Busy fraction of each LC server (big servers first).
    pub lc_busy: Vec<f64>,
    /// Average system power during the interval.
    pub power: PowerBreakdown,
    /// Energy consumed during the interval, joules.
    pub energy_j: f64,
    /// Aggregate batch IPS on big cores, as reported by the perf counters.
    pub batch_ips_big: f64,
    /// Aggregate batch IPS on small cores, as reported by the perf counters.
    pub batch_ips_small: f64,
    /// `false` when the Juno perf idle bug corrupted this window's counters
    /// (the batch IPS fields then contain garbage, as real `perf` would).
    pub counters_valid: bool,
    /// Number of LC cores whose allocation changed entering this interval.
    pub migrated_cores: usize,
}

impl IntervalStats {
    /// QoS tardiness of this interval: measured tail / target.
    pub fn tardiness(&self, target_s: f64) -> f64 {
        self.tail_latency_s / target_s
    }
}

/// Discrete-event simulation engine.
///
/// Owns the platform, the latency-critical workload model, the load
/// pattern, an optional batch-job pool, and all measurement apparatus. A
/// policy driver calls [`Engine::step`] once per monitoring interval with
/// the configuration to apply.
#[derive(Debug)]
pub struct Engine {
    platform: Platform,
    lc: Box<dyn LcModel>,
    load: Box<dyn LoadPattern>,
    batch_pool: Vec<Box<dyn BatchProgram>>,
    costs: ReconfigCosts,
    contention: ContentionModel,
    node: ServiceNode,
    counters: PerfCounters,
    meter: EnergyMeter,
    demand_rng: SimRng,
    arrival_rng: SimRng,
    now: f64,
    interval_s: f64,
    index: u64,
    current: Option<MachineConfig>,
    cold_this_interval: bool,
    total_migrations: u64,
    power_override: Option<hipster_platform::PowerModel>,
    /// Closed-loop clients currently thinking (calendar queue of expiry
    /// times).
    thinking: ThinkPool,
    /// Lognormal σ of the per-interval background-interference slowdown.
    jitter_sigma: f64,
    jitter_rng: SimRng,
    // Constants of the LC model, hoisted out of the per-interval loop (they
    // are virtual calls on a boxed trait object, and `step` is the hot
    // path).
    /// Cached `lc.max_load_rps()`.
    lc_max_load_rps: f64,
    /// Cached `lc.mean_burst().max(1.0)`.
    lc_mean_burst: f64,
    /// Cached `lc.qos()`.
    lc_qos: QosTarget,
    /// Cached `lc.closed_loop()`.
    lc_closed_loop: Option<ClosedLoop>,
    /// Last inter-arrival distribution, keyed by its event rate; rebuilt
    /// only when the offered load changes between intervals.
    iat_cache: Option<(f64, Exponential)>,
    /// Last think-time distribution, keyed by its rate.
    think_cache: Option<(f64, Exponential)>,
    // Reusable per-interval buffers (no allocation in steady state).
    /// Server specs handed to `ServiceNode::reconfigure`.
    specs_buf: Vec<ServerSpec>,
    /// Core kinds of this interval's batch cores.
    batch_kinds_buf: Vec<CoreKind>,
    /// Per-core busy fractions of the big cluster.
    big_busy_buf: Vec<f64>,
    /// Per-core busy fractions of the small cluster.
    small_busy_buf: Vec<f64>,
    /// Completion times collected by the closed-loop event loop.
    completions_buf: Vec<f64>,
    /// The run seed, kept so the fault stream can be derived lazily from
    /// its own dedicated fork without disturbing demand/arrival/jitter.
    seed: u64,
    /// Per-core fault timelines, when fault injection is enabled.
    faults: Option<FaultPlan>,
    /// Machine-wide fault condition imposed from outside (the cluster
    /// tier revokes or slows whole nodes through this).
    external_fault: FaultState,
    /// Previous interval's per-server revocation flags (spec order), for
    /// detecting alive-set changes that force a preempting reconfigure.
    prev_revoked: Vec<bool>,
    /// Scratch: this interval's per-server fault states (spec order).
    fault_states_buf: Vec<FaultState>,
    /// Scratch: this interval's per-server revocation flags.
    cur_revoked_buf: Vec<bool>,
    /// Core-intervals spent revoked (fault telemetry).
    revoked_core_intervals: u64,
    /// Core-intervals spent straggling (fault telemetry).
    straggler_core_intervals: u64,
    /// Per-request straggler injection + hedging, when armed.
    req_faults: Option<ReqFaults>,
    /// The hedging policy applied to per-request stragglers.
    hedge: HedgeSpec,
}

/// Per-request straggler machinery: each arriving request independently
/// straggles with probability `prob`, scaling its service demand by a
/// bounded-Pareto multiplier drawn from a dedicated `"reqstraggle"` RNG
/// fork. Hedging caps the effective multiplier at `1 + delay_multiple`
/// (the backup copy finishes at nominal speed after the issue delay) and
/// counts each capped request as one hedge.
#[derive(Debug)]
struct ReqFaults {
    rng: SimRng,
    prob: f64,
    mult: Option<BoundedPareto>,
    min: f64,
    /// Effective-multiplier cap from hedging (`1 + delay_multiple`;
    /// infinite when hedging is disabled).
    cap: f64,
    straggled: u64,
    hedged: u64,
}

impl Engine {
    /// Creates an engine for `platform` running `lc` under `load`, with all
    /// stochastic streams derived from `seed`.
    pub fn new(
        platform: Platform,
        lc: Box<dyn LcModel>,
        load: Box<dyn LoadPattern>,
        seed: u64,
    ) -> Self {
        let mut root = SimRng::seed(seed);
        let num_cores = platform.num_cores();
        let mut node = ServiceNode::new();
        node.set_timeout(lc.timeout_s());
        let lc_max_load_rps = lc.max_load_rps();
        let lc_mean_burst = lc.mean_burst().max(1.0);
        let lc_qos = lc.qos();
        let lc_closed_loop = lc.closed_loop();
        Engine {
            platform,
            lc,
            load,
            batch_pool: Vec::new(),
            costs: ReconfigCosts::juno_defaults(),
            contention: ContentionModel::juno_defaults(),
            node,
            counters: PerfCounters::new(num_cores, false),
            meter: EnergyMeter::new(),
            demand_rng: root.fork("demand"),
            arrival_rng: root.fork("arrival"),
            now: 0.0,
            interval_s: 1.0,
            index: 0,
            current: None,
            cold_this_interval: false,
            total_migrations: 0,
            power_override: None,
            thinking: ThinkPool::new(),
            jitter_sigma: DEFAULT_JITTER_SIGMA,
            jitter_rng: root.fork("jitter"),
            lc_max_load_rps,
            lc_mean_burst,
            lc_qos,
            lc_closed_loop,
            iat_cache: None,
            think_cache: None,
            specs_buf: Vec::new(),
            batch_kinds_buf: Vec::new(),
            big_busy_buf: Vec::new(),
            small_busy_buf: Vec::new(),
            completions_buf: Vec::new(),
            seed,
            faults: None,
            external_fault: FaultState::Healthy,
            prev_revoked: Vec::new(),
            fault_states_buf: Vec::new(),
            cur_revoked_buf: Vec::new(),
            revoked_core_intervals: 0,
            straggler_core_intervals: 0,
            req_faults: None,
            hedge: HedgeSpec::none(),
        }
    }

    /// Installs a batch-job pool; remaining cores run these round-robin
    /// whenever the applied [`MachineConfig::batch_enabled`] is set.
    pub fn with_batch_pool(mut self, pool: Vec<Box<dyn BatchProgram>>) -> Self {
        self.batch_pool = pool;
        self
    }

    /// Overrides the reconfiguration cost model.
    pub fn with_costs(mut self, costs: ReconfigCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Overrides the contention model.
    pub fn with_contention(mut self, contention: ContentionModel) -> Self {
        self.contention = contention;
        self
    }

    /// Sets the monitoring interval length (default 1 s, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not strictly positive.
    pub fn with_interval(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "interval must be positive");
        self.interval_s = seconds;
        self
    }

    /// Arms the Juno perf idle-counter bug (disarmed by default).
    pub fn with_perf_quirk(mut self, armed: bool) -> Self {
        let n = self.platform.num_cores();
        self.counters = PerfCounters::new(n, armed);
        self
    }

    /// Sets the background-interference jitter: each monitoring interval
    /// the LC service runs `exp(N(0, σ))` slower than nominal, modelling
    /// OS housekeeping, interrupts and other un-modelled noise on a real
    /// Linux box. Default σ = 0.10; pass 0 for a noiseless simulator.
    ///
    /// This noise is what keeps feedback policies honest: with a perfectly
    /// quiet simulator a threshold controller can park one notch above the
    /// capacity boundary forever, which real systems never allow.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid jitter: {sigma}");
        self.jitter_sigma = sigma;
        self
    }

    /// Enables fault injection: per-core transient revocations and
    /// straggler episodes scheduled by `spec`. The timelines draw from a
    /// dedicated `"faults"` fork of the run seed, so enabling faults
    /// never perturbs the demand/arrival/jitter streams, and
    /// [`FaultSpec::none`] leaves the engine exactly on the fault-free
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`FaultSpec::validate`] — scenario and
    /// cluster specs validate before reaching here.
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid fault spec: {e}"));
        self.faults = spec.has_unit_faults().then(|| {
            let base = SimRng::seed(self.seed).fork("faults").next_u64();
            FaultPlan::new(spec, base, self.platform.num_cores())
        });
        self.req_faults = spec.has_request_stragglers().then(|| ReqFaults {
            rng: SimRng::seed(self.seed).fork("reqstraggle"),
            prob: spec.request_straggler_prob,
            mult: (spec.request_straggler_max > spec.request_straggler_min).then(|| {
                BoundedPareto::new(
                    spec.request_straggler_min,
                    spec.request_straggler_max,
                    spec.request_straggler_alpha,
                )
            }),
            min: spec.request_straggler_min,
            cap: 1.0 + self.hedge.delay_multiple,
            straggled: 0,
            hedged: 0,
        });
        self
    }

    /// Sets the hedging policy for per-request stragglers: a straggled
    /// request's effective service time is capped at
    /// `1 + delay_multiple` times nominal (the backup copy, issued after
    /// the delay, finishes at nominal speed and the loser is cancelled).
    /// Has no effect unless [`FaultSpec::with_request_stragglers`] is
    /// armed; [`HedgeSpec::none`] never hedges.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`HedgeSpec::validate`].
    pub fn with_hedging(mut self, hedge: HedgeSpec) -> Self {
        hedge
            .validate()
            .unwrap_or_else(|e| panic!("invalid hedge spec: {e}"));
        self.hedge = hedge;
        if let Some(rf) = self.req_faults.as_mut() {
            rf.cap = 1.0 + hedge.delay_multiple;
        }
        self
    }

    /// Cumulative count of requests whose per-request straggle draw fired.
    pub fn request_straggles(&self) -> u64 {
        self.req_faults.as_ref().map_or(0, |rf| rf.straggled)
    }

    /// Cumulative count of requests rescued by a hedged backup copy
    /// (straggle multiplier exceeded the hedge cap).
    pub fn hedged_requests(&self) -> u64 {
        self.req_faults.as_ref().map_or(0, |rf| rf.hedged)
    }

    /// Applies the per-request straggler draw (and hedge cap) to one
    /// arriving request's demand. No-op — and crucially, zero RNG draws —
    /// when per-request stragglers are unarmed.
    #[inline]
    fn straggle_demand(&mut self, mut demand: Demand) -> Demand {
        if let Some(rf) = self.req_faults.as_mut() {
            if rf.rng.chance(rf.prob) {
                let drawn = match &rf.mult {
                    Some(pareto) => pareto.sample(&mut rf.rng),
                    None => rf.min,
                };
                rf.straggled += 1;
                let eff = if drawn > rf.cap {
                    rf.hedged += 1;
                    rf.cap
                } else {
                    drawn
                };
                demand.work *= eff;
                demand.mem_s *= eff;
            }
        }
        demand
    }

    /// Imposes a machine-wide fault condition from outside for subsequent
    /// intervals — the cluster tier's hook for revoking or slowing whole
    /// nodes. Combines with any per-core [`Engine::with_faults`] plan
    /// (revocation dominates; straggles compound).
    ///
    /// # Panics
    ///
    /// Panics on a straggling state with slowdown below 1.
    pub fn set_external_fault(&mut self, state: FaultState) {
        if let FaultState::Straggling { slowdown } = state {
            assert!(
                slowdown.is_finite() && slowdown >= 1.0,
                "external straggle slowdown must be >= 1: {slowdown}"
            );
        }
        self.external_fault = state;
    }

    /// Core-intervals spent `(revoked, straggling)` so far — the engine's
    /// fault telemetry counters.
    pub fn fault_core_intervals(&self) -> (u64, u64) {
        (self.revoked_core_intervals, self.straggler_core_intervals)
    }

    /// Disables Linux `cpuidle` — the paper's mitigation for the perf bug.
    /// Idle cores stop entering idle states (clean counters) but burn more
    /// power; the power model switches to the cpuidle-disabled calibration.
    pub fn disable_cpuidle(&mut self) {
        self.counters.disable_cpuidle();
        self.power_override = Some(self.platform.power_model().with_cpuidle_disabled());
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The platform under simulation.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The latency-critical workload model.
    pub fn lc_model(&self) -> &dyn LcModel {
        self.lc.as_ref()
    }

    /// The monitoring interval length, seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Total LC core migrations so far.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Cumulative energy registers.
    pub fn energy_meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Runs one monitoring interval under `cfg` and returns its statistics.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid for the platform or allocates zero cores
    /// to the latency-critical workload.
    pub fn step(&mut self, cfg: MachineConfig) -> IntervalStats {
        self.platform
            .validate(&CoreConfig::new(
                cfg.lc.n_big,
                cfg.lc.n_small,
                cfg.big_freq,
                cfg.small_freq,
            ))
            .unwrap_or_else(|e| panic!("invalid machine config: {e}"));
        assert!(
            cfg.lc.total_cores() > 0,
            "latency-critical workload needs at least one core"
        );

        let (mut preempt, mut stall, migrated) = self.transition_kind(&cfg);
        self.total_migrations += migrated as u64;
        self.cold_this_interval = migrated > 0;

        // Batch allocation for this interval: remaining cores, big first.
        // The kinds buffer is moved out for the duration of the step so it
        // can be borrowed alongside `&mut self`, then returned for reuse.
        let mut batch_cores = std::mem::take(&mut self.batch_kinds_buf);
        self.fill_batch_kinds(&cfg, &mut batch_cores);
        let on_lc_clusters = batch_cores.iter().filter(|k| cfg.lc.count(**k) > 0).count();
        let slowdown = self.lc_slowdown(on_lc_clusters, batch_cores.len());

        // LC server specs: big servers first, then small (reused buffer).
        self.specs_buf.clear();
        for _ in 0..cfg.lc.n_big {
            self.specs_buf.push(ServerSpec {
                kind: CoreKind::Big,
                freq: cfg.big_freq,
                speed: self.lc.service_speed(CoreKind::Big, cfg.big_freq),
                slowdown,
            });
        }
        for _ in 0..cfg.lc.n_small {
            self.specs_buf.push(ServerSpec {
                kind: CoreKind::Small,
                freq: cfg.small_freq,
                speed: self.lc.service_speed(CoreKind::Small, cfg.small_freq),
                slowdown,
            });
        }
        // Fault overlay, sampled at the interval boundary: revoked servers
        // drop out of the spec list (forcing a preempting reconfigure when
        // the alive set changes, so in-flight work requeues), stragglers
        // keep their slot with a multiplied slowdown (a pure re-key riding
        // the DVFS path). When no plan, no external fault, and no revoked
        // carry-over exist, none of this runs and the spec list is exactly
        // the fault-free one.
        let total_servers = cfg.lc.total_cores();
        let mut alive_big = cfg.lc.n_big;
        let mut alive_small = cfg.lc.n_small;
        let faults_active = self.faults.is_some()
            || self.external_fault.is_faulted()
            || self.prev_revoked.iter().any(|&r| r);
        if faults_active {
            let big_total = self.platform.cluster(CoreKind::Big).len();
            self.fault_states_buf.clear();
            for s in 0..total_servers {
                // Server `s` sits on a stable physical core: big LC servers
                // on big cores 0.., small LC servers on small cores 0..
                // (platform core id `big_total + ..`).
                let unit = if s < cfg.lc.n_big {
                    s
                } else {
                    big_total + (s - cfg.lc.n_big)
                };
                let local = match &mut self.faults {
                    Some(plan) => plan.state(unit, self.now),
                    None => FaultState::Healthy,
                };
                self.fault_states_buf
                    .push(FaultState::combine(self.external_fault, local));
            }
            self.cur_revoked_buf.clear();
            let mut unwarned_new = false;
            let mut w = 0usize;
            for s in 0..total_servers {
                match self.fault_states_buf[s] {
                    FaultState::Revoked { warned } => {
                        self.cur_revoked_buf.push(true);
                        if s < cfg.lc.n_big {
                            alive_big -= 1;
                        } else {
                            alive_small -= 1;
                        }
                        self.revoked_core_intervals += 1;
                        if !warned && self.prev_revoked.get(s) != Some(&true) {
                            unwarned_new = true;
                        }
                    }
                    state => {
                        self.cur_revoked_buf.push(false);
                        let mut spec = self.specs_buf[s];
                        if let FaultState::Straggling { slowdown: m } = state {
                            spec.slowdown *= m;
                            self.straggler_core_intervals += 1;
                        }
                        self.specs_buf[w] = spec;
                        w += 1;
                    }
                }
            }
            self.specs_buf.truncate(w);
            let cur_any = self.cur_revoked_buf.iter().any(|&r| r);
            let prev_any = self.prev_revoked.iter().any(|&r| r);
            let revoked_set_changed =
                (cur_any || prev_any) && self.prev_revoked != self.cur_revoked_buf;
            if !preempt && revoked_set_changed {
                // The alive set changed: requeue in-flight work through the
                // preemption path. A fresh *unwarned* revocation also pays
                // the migration stall; warned ones drained gracefully.
                preempt = true;
                if unwarned_new {
                    stall = stall.max(self.costs.core_migration_stall_s);
                }
            }
            std::mem::swap(&mut self.prev_revoked, &mut self.cur_revoked_buf);
        } else if !self.prev_revoked.is_empty() {
            self.prev_revoked.clear();
        }
        if self.specs_buf.is_empty() {
            // Every server revoked: nothing to run on. Requests keep
            // queueing (and shed on timeout at dispatch); energy gates in
            // `measure` via the zero alive counts.
            self.node.revoke_all(self.now);
        } else {
            self.node
                .reconfigure(self.now, &self.specs_buf, preempt, stall);
        }
        self.node.begin_interval(self.now);

        // Event loop for the interval.
        let t_end = self.now + self.interval_s;
        let frac = self.load.load_at(self.now).max(0.0);
        let rate = frac * self.lc_max_load_rps;
        match self.lc_closed_loop {
            Some(cl) => self.run_events_closed(t_end, frac, stall, cl),
            None => self.run_events(t_end, rate, stall),
        }

        let node_iv = self.node.end_interval(t_end, self.lc_qos.percentile);

        // Measurement: power, energy, counters.
        let stats = self.measure(
            cfg,
            frac,
            rate,
            node_iv,
            &batch_cores,
            alive_big,
            alive_small,
        );
        self.batch_kinds_buf = batch_cores;
        self.current = Some(cfg);
        self.now = t_end;
        self.index += 1;
        stats
    }

    /// Classifies the transition into (preempt?, stall seconds, migrated
    /// core count).
    fn transition_kind(&self, cfg: &MachineConfig) -> (bool, f64, usize) {
        match &self.current {
            None => (true, 0.0, 0),
            Some(prev) => {
                if !prev.lc.same_mapping(&cfg.lc) {
                    let migrated = prev.lc.n_big.abs_diff(cfg.lc.n_big)
                        + prev.lc.n_small.abs_diff(cfg.lc.n_small);
                    (true, self.costs.core_migration_stall_s, migrated)
                } else if prev.big_freq != cfg.big_freq || prev.small_freq != cfg.small_freq {
                    (false, self.costs.dvfs_stall_s, 0)
                } else {
                    (false, 0.0, 0)
                }
            }
        }
    }

    /// Fills `out` with the core kinds of the batch cores for this config
    /// (big cores first). `out` is a reused buffer; it is cleared first.
    fn fill_batch_kinds(&self, cfg: &MachineConfig, out: &mut Vec<CoreKind>) {
        out.clear();
        if !cfg.batch_enabled || self.batch_pool.is_empty() {
            return;
        }
        let big_total = self.platform.cluster(CoreKind::Big).len();
        let small_total = self.platform.cluster(CoreKind::Small).len();
        out.extend(std::iter::repeat(CoreKind::Big).take(big_total - cfg.lc.n_big));
        out.extend(std::iter::repeat(CoreKind::Small).take(small_total - cfg.lc.n_small));
    }

    fn lc_slowdown(&mut self, on_lc_clusters: usize, n_batch: usize) -> f64 {
        let mut s = self.contention.lc_slowdown(on_lc_clusters, n_batch);
        if self.cold_this_interval {
            s *= self.costs.cold_cache_penalty;
        }
        if self.jitter_sigma > 0.0 {
            // Box–Muller draw for the interval's interference factor;
            // interference only ever slows service down.
            let u1 = 1.0 - self.jitter_rng.uniform();
            let u2 = self.jitter_rng.uniform();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            s *= (self.jitter_sigma * z).exp();
        }
        s.max(1.0)
    }

    fn run_events(&mut self, t_end: f64, rate: f64, stall: f64) {
        let mut kick_at = if stall > 0.0 {
            Some(self.now + stall)
        } else {
            None
        };
        // Arrival *events* carry bursts of requests; thin the event rate so
        // the request rate equals the offered load. The distribution is
        // cached across intervals and only rebuilt when the offered load
        // actually changes.
        let event_rate = rate / self.lc_mean_burst;
        let iat = if event_rate > 0.0 {
            Some(cached_exp(&mut self.iat_cache, event_rate))
        } else {
            None
        };
        let mut next_arrival = iat
            .as_ref()
            .map(|d| self.now + d.sample(&mut self.arrival_rng));
        loop {
            let tc = self.node.next_completion();
            // Earliest of: completion, arrival, kick — within the interval.
            let mut t = t_end;
            let mut what = 0u8; // 0 = end, 1 = completion, 2 = arrival, 3 = kick
            if let Some(x) = tc {
                if x < t {
                    t = x;
                    what = 1;
                }
            }
            if let Some(x) = next_arrival {
                if x < t {
                    t = x;
                    what = 2;
                }
            }
            if let Some(x) = kick_at {
                if x < t {
                    t = x;
                    what = 3;
                }
            }
            self.node.advance(t);
            match what {
                0 => break,
                1 => {} // advance() already completed it
                2 => {
                    let burst = self.lc.sample_burst(&mut self.demand_rng).max(1);
                    for _ in 0..burst {
                        let demand = self.lc.sample_demand(&mut self.demand_rng);
                        let demand = self.straggle_demand(demand);
                        self.node.arrive(t, demand);
                    }
                    next_arrival = iat.as_ref().map(|d| t + d.sample(&mut self.arrival_rng));
                }
                3 => {
                    self.node.kick(t);
                    kick_at = None;
                }
                _ => unreachable!(),
            }
        }
    }

    /// Closed-loop event loop: a population of `frac × max_clients` clients
    /// submit → wait → think (exponential, mean `think_mean_s`) → repeat.
    /// The population is adjusted at interval boundaries; surplus clients
    /// are retired from the thinking pool (in-flight requests complete
    /// normally).
    ///
    /// The pool is a calendar queue ([`ThinkPool`]): each think expiry is
    /// an O(1) amortized bucket pop instead of the O(log clients) heap pop
    /// of PRs 3–5 or the O(clients) scan before that, and population
    /// shrink is one selection pass per boundary. Clients are
    /// indistinguishable, so the calendar pool reproduces the heap- and
    /// scan-based traces bit-for-bit.
    fn run_events_closed(&mut self, t_end: f64, frac: f64, stall: f64, cl: ClosedLoop) {
        let mut kick_at = if stall > 0.0 {
            Some(self.now + stall)
        } else {
            None
        };
        let think = cached_exp(&mut self.think_cache, 1.0 / cl.think_mean_s.max(1e-9));
        let target = (frac * cl.max_clients as f64).round().max(0.0) as usize;
        let mut population = self.thinking.len() + self.node.queue_len() + self.node.in_flight();
        // Grow: new clients start thinking now.
        while population < target {
            let expiry = self.now + think.sample(&mut self.arrival_rng);
            self.thinking.push(expiry);
            population += 1;
        }
        // Shrink: retire the clients that would submit last.
        if population > target {
            self.thinking
                .retire_latest((population - target).min(self.thinking.len()));
        }

        let mut completions = std::mem::take(&mut self.completions_buf);
        loop {
            let mut t = t_end;
            let mut what = 0u8; // 0 = end, 1 = completion, 2 = think expiry, 3 = kick
            if let Some(x) = self.node.next_completion() {
                if x < t {
                    t = x;
                    what = 1;
                }
            }
            if let Some(x) = self.thinking.peek_min() {
                if x < t {
                    t = x;
                    what = 2;
                }
            }
            if let Some(x) = kick_at {
                if x < t {
                    t = x;
                    what = 3;
                }
            }
            completions.clear();
            self.node.advance_collect(t, &mut completions);
            for &ct in &completions {
                // The responding client starts thinking.
                self.thinking.push(ct + think.sample(&mut self.arrival_rng));
            }
            match what {
                0 => break,
                1 => {}
                2 => {
                    self.thinking.pop_min().expect("think expiry exists");
                    let demand = self.lc.sample_demand(&mut self.demand_rng);
                    let demand = self.straggle_demand(demand);
                    self.node.arrive(t, demand);
                }
                3 => {
                    self.node.kick(t);
                    kick_at = None;
                }
                _ => unreachable!(),
            }
        }
        self.completions_buf = completions;
    }

    /// `alive_big`/`alive_small` are the LC servers that actually ran
    /// this interval (equal to `cfg.lc` counts unless fault injection
    /// revoked some): the node's busy vector covers exactly those, and
    /// energy gating keys off them so a fully revoked cluster powers down.
    #[allow(clippy::too_many_arguments)]
    fn measure(
        &mut self,
        cfg: MachineConfig,
        frac: f64,
        rate: f64,
        node_iv: crate::service::NodeInterval,
        batch_cores: &[CoreKind],
        alive_big: usize,
        alive_small: usize,
    ) -> IntervalStats {
        let dur = self.interval_s;
        let big_total = self.platform.cluster(CoreKind::Big).len();
        let small_total = self.platform.cluster(CoreKind::Small).len();

        // Per-core busy fractions in cluster order: LC cores first within
        // each cluster, then batch cores (100% busy), then idle. The
        // buffers are engine-owned and reused across intervals.
        let mut big_busy = std::mem::take(&mut self.big_busy_buf);
        let mut small_busy = std::mem::take(&mut self.small_busy_buf);
        big_busy.clear();
        big_busy.resize(big_total, 0.0);
        small_busy.clear();
        small_busy.resize(small_total, 0.0);
        for i in 0..alive_big {
            big_busy[i] = node_iv.busy[i];
        }
        for i in 0..alive_small {
            small_busy[i] = node_iv.busy[alive_big + i];
        }
        let n_batch_big = batch_cores.iter().filter(|k| **k == CoreKind::Big).count();
        let n_batch_small = batch_cores.len() - n_batch_big;
        for i in 0..n_batch_big {
            big_busy[cfg.lc.n_big + i] = 1.0;
        }
        for i in 0..n_batch_small {
            small_busy[cfg.lc.n_small + i] = 1.0;
        }

        // Perf counters: batch instructions (what HipsterCo reads), LC
        // instructions approximated from busy time, idle stretches for the
        // Juno quirk.
        let mut true_batch_big_ips = 0.0;
        let mut true_batch_small_ips = 0.0;
        for (i, kind) in batch_cores.iter().enumerate() {
            let program = &self.batch_pool[i % self.batch_pool.len()];
            let (core_idx, freq) = match kind {
                CoreKind::Big => (CoreId(cfg.lc.n_big + i), cfg.big_freq),
                CoreKind::Small => {
                    // Small batch cores come after the big batch cores in
                    // `batch_cores`; translate to a platform core id.
                    let small_pos = i - n_batch_big;
                    (
                        CoreId(big_total + cfg.lc.n_small + small_pos),
                        cfg.small_freq,
                    )
                }
            };
            let ips = program.ips(*kind, freq);
            match kind {
                CoreKind::Big => true_batch_big_ips += ips,
                CoreKind::Small => true_batch_small_ips += ips,
            }
            self.counters.record(core_idx, (ips * dur) as u64, 1.0);
        }
        // Cluster IPS at this interval's frequency is per-cluster, not
        // per-core: hoist it out of the busy sweeps.
        let big_lc_ips = self
            .platform
            .cluster(CoreKind::Big)
            .spec()
            .compute_ips(cfg.big_freq);
        let small_lc_ips = self
            .platform
            .cluster(CoreKind::Small)
            .spec()
            .compute_ips(cfg.small_freq);
        for (i, &b) in big_busy.iter().enumerate() {
            if i < alive_big {
                self.counters
                    .record(CoreId(i), (big_lc_ips * b * dur) as u64, b);
            }
            if b < 0.999 {
                self.counters
                    .record_idle_stretch(CoreId(i), (1.0 - b) * dur * 1e6);
            }
        }
        for (i, &b) in small_busy.iter().enumerate() {
            let core = CoreId(big_total + i);
            if i < alive_small {
                self.counters
                    .record(core, (small_lc_ips * b * dur) as u64, b);
            }
            if b < 0.999 {
                self.counters
                    .record_idle_stretch(core, (1.0 - b) * dur * 1e6);
            }
        }

        let (batch_ips_big, batch_ips_small, counters_valid) = match self.counters.read_window(dur)
        {
            Ok(_) => (true_batch_big_ips, true_batch_small_ips, true),
            Err(_) => {
                // Real perf hands back absurd values; reproduce that.
                (1.0e18, 1.0e18, false)
            }
        };

        // A cluster with no latency-critical cores and no batch cores is
        // fully idle: with cpuidle enabled it enters Juno's cluster-off
        // state and its static draw collapses.
        let model = self.power_override.unwrap_or(*self.platform.power_model());
        let big_gated = alive_big == 0 && n_batch_big == 0;
        let small_gated = alive_small == 0 && n_batch_small == 0;
        let power = model.system_power_gated(
            &self.platform,
            cfg.big_freq,
            cfg.small_freq,
            &big_busy,
            &small_busy,
            big_gated,
            small_gated,
        );
        self.meter.advance(dur, power);
        self.big_busy_buf = big_busy;
        self.small_busy_buf = small_busy;

        IntervalStats {
            index: self.index,
            start_s: self.now,
            duration_s: dur,
            config: cfg,
            offered_load_frac: frac,
            offered_rps: rate,
            arrivals: node_iv.arrivals,
            completions: node_iv.completions,
            timeouts: node_iv.timeouts,
            throughput_rps: node_iv.completions as f64 / dur,
            tail_latency_s: node_iv.tail_latency_s,
            mean_latency_s: node_iv.mean_latency_s,
            queue_len: node_iv.queue_len,
            lc_busy: node_iv.busy,
            power,
            energy_j: power.total() * dur,
            batch_ips_big,
            batch_ips_small,
            counters_valid,
            migrated_cores: self.transitioned_cores(&cfg),
        }
    }

    fn transitioned_cores(&self, cfg: &MachineConfig) -> usize {
        match &self.current {
            None => 0,
            Some(prev) => {
                prev.lc.n_big.abs_diff(cfg.lc.n_big) + prev.lc.n_small.abs_diff(cfg.lc.n_small)
            }
        }
    }
}

/// Returns the exponential distribution for `rate`, reusing `cache` when
/// the rate is unchanged from the previous interval (so steady-load runs
/// construct each distribution exactly once).
fn cached_exp(cache: &mut Option<(f64, Exponential)>, rate: f64) -> Exponential {
    match *cache {
        Some((r, d)) if r == rate => d,
        _ => {
            let d = Exponential::new(rate);
            *cache = Some((rate, d));
            d
        }
    }
}
