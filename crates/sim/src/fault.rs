//! Deterministic fault injection: transient server revocations and
//! heavy-tailed straggler episodes.
//!
//! A [`FaultSpec`] declares two independent per-server fault families:
//!
//! * **Transient revocations** (CloudCoaster-style): a server disappears
//!   for a fixed epoch. Revocations arrive as a Poisson process per
//!   server; each episode is *warned* (the scheduler saw it coming and
//!   drains gracefully) or *unwarned* (in-flight work is preempted and
//!   pays the migration stall) with probability `warned_prob`.
//! * **Straggler episodes** (START-style): a server keeps running but
//!   slows down by a heavy-tailed multiplier drawn from a bounded Pareto,
//!   for a fixed epoch. Stragglers ride the existing DVFS re-key path —
//!   the server set is unchanged, only effective rates move.
//!
//! A [`FaultPlan`] expands a spec into per-unit timelines ("unit" is a
//! physical core for the engine, a node for the cluster tier). Every unit
//! gets its own split-seeded [`SimRng`] *pair* (one stream per fault
//! family), so timelines are reproducible and independent of how many
//! other units exist, which units are queried, or what order queries
//! arrive in across units. Queries per unit must be time-monotonic — the
//! engine and cluster both sample at interval starts, which are.
//!
//! Beyond the per-server families, a [`FaultSpec`] can arm per-*request*
//! stragglers (bounded-Pareto service-time multipliers drawn per request
//! from a dedicated stream — the START-style tail, where any individual
//! request can go long even on a healthy server), optionally mitigated by
//! a [`HedgeSpec`] that issues a backup copy after a configurable delay
//! and keeps whichever finishes first.
//!
//! Correlated *domain* faults — a whole rack or zone failing at once —
//! are declared by a [`DomainFaultSpec`] and expanded over a
//! [`TopologySpec`](crate::TopologySpec) by a [`WavePlan`], which layers
//! on top of the independent per-unit [`FaultPlan`].
//!
//! `FaultSpec::none()` builds no plan at all: the fault-off path draws
//! zero random numbers and executes the exact pre-fault code, which the
//! `fault_equivalence` differential suite pins byte-for-byte. The same
//! holds for `DomainFaultSpec::none()` and `HedgeSpec::none()`.

use crate::dist::{BoundedPareto, Exponential};
use crate::rng::{Sampler, SimRng};
use crate::topology::TopologySpec;
use std::fmt;

/// Declarative fault configuration. `Copy`, like [`crate::EngineSpec`],
/// so specs can be embedded in engine/cluster specs freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Poisson rate of revocation episodes per server, per second.
    /// Zero disables revocations.
    pub revocation_rate_per_s: f64,
    /// Length of each revocation epoch, seconds.
    pub revocation_duration_s: f64,
    /// Probability a revocation is warned (graceful drain, no stall, and
    /// the cluster tier may re-dispatch stranded work immediately).
    pub warned_prob: f64,
    /// Poisson rate of straggler episodes per server, per second.
    /// Zero disables stragglers.
    pub straggler_rate_per_s: f64,
    /// Length of each straggler epoch, seconds.
    pub straggler_duration_s: f64,
    /// Pareto shape of the slowdown multiplier (smaller = heavier tail).
    pub straggler_alpha: f64,
    /// Minimum slowdown multiplier (must be >= 1: a straggler never
    /// speeds up).
    pub straggler_min: f64,
    /// Maximum slowdown multiplier (>= `straggler_min`).
    pub straggler_max: f64,
    /// Probability that any individual request straggles (service-time
    /// multiplier drawn per request, not per server). Zero disables
    /// per-request stragglers.
    pub request_straggler_prob: f64,
    /// Pareto shape of the per-request multiplier.
    pub request_straggler_alpha: f64,
    /// Minimum per-request multiplier (>= 1).
    pub request_straggler_min: f64,
    /// Maximum per-request multiplier (>= `request_straggler_min`).
    pub request_straggler_max: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// No faults at all — the simulator behaves exactly as without this
    /// subsystem.
    pub fn none() -> Self {
        FaultSpec {
            revocation_rate_per_s: 0.0,
            revocation_duration_s: 0.0,
            warned_prob: 0.0,
            straggler_rate_per_s: 0.0,
            straggler_duration_s: 0.0,
            straggler_alpha: 1.0,
            straggler_min: 1.0,
            straggler_max: 1.0,
            request_straggler_prob: 0.0,
            request_straggler_alpha: 1.0,
            request_straggler_min: 1.0,
            request_straggler_max: 1.0,
        }
    }

    /// Enables transient revocations at `rate_per_s` per server, each
    /// lasting `duration_s`.
    pub fn with_revocations(mut self, rate_per_s: f64, duration_s: f64) -> Self {
        self.revocation_rate_per_s = rate_per_s;
        self.revocation_duration_s = duration_s;
        self
    }

    /// Sets the probability that a revocation is warned.
    pub fn with_warned(mut self, prob: f64) -> Self {
        self.warned_prob = prob;
        self
    }

    /// Enables straggler episodes at `rate_per_s` per server, each
    /// lasting `duration_s`, with slowdown multipliers drawn from
    /// `BoundedPareto(min, max, alpha)` (or exactly `min` when
    /// `min == max`).
    pub fn with_stragglers(
        mut self,
        rate_per_s: f64,
        duration_s: f64,
        alpha: f64,
        min: f64,
        max: f64,
    ) -> Self {
        self.straggler_rate_per_s = rate_per_s;
        self.straggler_duration_s = duration_s;
        self.straggler_alpha = alpha;
        self.straggler_min = min;
        self.straggler_max = max;
        self
    }

    /// Each request independently straggles with probability `prob`,
    /// scaling its service demand by a multiplier drawn from
    /// `BoundedPareto(min, max, alpha)` (or exactly `min` when
    /// `min == max`).
    pub fn with_request_stragglers(mut self, prob: f64, alpha: f64, min: f64, max: f64) -> Self {
        self.request_straggler_prob = prob;
        self.request_straggler_alpha = alpha;
        self.request_straggler_min = min;
        self.request_straggler_max = max;
        self
    }

    /// True when every fault family is disabled.
    pub fn is_none(&self) -> bool {
        !self.has_unit_faults() && !self.has_request_stragglers()
    }

    /// True when a per-unit (per-server) fault family is armed — the
    /// families a [`FaultPlan`] expands.
    pub fn has_unit_faults(&self) -> bool {
        self.revocation_rate_per_s > 0.0 || self.straggler_rate_per_s > 0.0
    }

    /// True when per-request stragglers are armed.
    pub fn has_request_stragglers(&self) -> bool {
        self.request_straggler_prob > 0.0
    }

    /// This spec with the per-unit families stripped, keeping only the
    /// per-request straggler knobs. The cluster tier imposes unit faults
    /// itself (so per-node engines must not re-draw them) but delegates
    /// request-level stragglers to each node's engine.
    pub fn request_only(&self) -> FaultSpec {
        FaultSpec {
            request_straggler_prob: self.request_straggler_prob,
            request_straggler_alpha: self.request_straggler_alpha,
            request_straggler_min: self.request_straggler_min,
            request_straggler_max: self.request_straggler_max,
            ..FaultSpec::none()
        }
    }

    /// Checks every knob, returning the first violation. A spec that
    /// passes here can never panic deeper in the stack.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        for &rate in &[self.revocation_rate_per_s, self.straggler_rate_per_s] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(FaultSpecError::NegativeRate { rate });
            }
        }
        if !self.warned_prob.is_finite() || !(0.0..=1.0).contains(&self.warned_prob) {
            return Err(FaultSpecError::InvalidProbability {
                prob: self.warned_prob,
            });
        }
        if self.revocation_rate_per_s > 0.0
            && (!self.revocation_duration_s.is_finite() || self.revocation_duration_s <= 0.0)
        {
            return Err(FaultSpecError::NonPositiveDuration {
                seconds: self.revocation_duration_s,
            });
        }
        if self.straggler_rate_per_s > 0.0 {
            if !self.straggler_duration_s.is_finite() || self.straggler_duration_s <= 0.0 {
                return Err(FaultSpecError::NonPositiveDuration {
                    seconds: self.straggler_duration_s,
                });
            }
            if !self.straggler_min.is_finite() || self.straggler_min < 1.0 {
                return Err(FaultSpecError::SlowdownBelowOne {
                    multiplier: self.straggler_min,
                });
            }
            if !self.straggler_max.is_finite() || self.straggler_max < self.straggler_min {
                return Err(FaultSpecError::InvalidSlowdownRange {
                    min: self.straggler_min,
                    max: self.straggler_max,
                });
            }
            if !self.straggler_alpha.is_finite() || self.straggler_alpha <= 0.0 {
                return Err(FaultSpecError::InvalidAlpha {
                    alpha: self.straggler_alpha,
                });
            }
        }
        if !self.request_straggler_prob.is_finite()
            || !(0.0..=1.0).contains(&self.request_straggler_prob)
        {
            return Err(FaultSpecError::InvalidProbability {
                prob: self.request_straggler_prob,
            });
        }
        if self.request_straggler_prob > 0.0 {
            if !self.request_straggler_min.is_finite() || self.request_straggler_min < 1.0 {
                return Err(FaultSpecError::SlowdownBelowOne {
                    multiplier: self.request_straggler_min,
                });
            }
            if !self.request_straggler_max.is_finite()
                || self.request_straggler_max < self.request_straggler_min
            {
                return Err(FaultSpecError::InvalidSlowdownRange {
                    min: self.request_straggler_min,
                    max: self.request_straggler_max,
                });
            }
            if !self.request_straggler_alpha.is_finite() || self.request_straggler_alpha <= 0.0 {
                return Err(FaultSpecError::InvalidAlpha {
                    alpha: self.request_straggler_alpha,
                });
            }
        }
        Ok(())
    }
}

/// Why a [`FaultSpec`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpecError {
    /// A fault rate was negative or non-finite.
    NegativeRate {
        /// The offending rate, per second.
        rate: f64,
    },
    /// `warned_prob` was outside `[0, 1]` or non-finite.
    InvalidProbability {
        /// The offending probability.
        prob: f64,
    },
    /// An episode duration was zero, negative, or non-finite while its
    /// fault family was enabled.
    NonPositiveDuration {
        /// The offending duration, seconds.
        seconds: f64,
    },
    /// The straggler slowdown floor was below 1 (a straggler never runs
    /// faster than healthy).
    SlowdownBelowOne {
        /// The offending minimum multiplier.
        multiplier: f64,
    },
    /// The straggler slowdown range was inverted (`max < min`).
    InvalidSlowdownRange {
        /// Configured minimum multiplier.
        min: f64,
        /// Configured maximum multiplier.
        max: f64,
    },
    /// The straggler Pareto shape was non-positive or non-finite.
    InvalidAlpha {
        /// The offending shape parameter.
        alpha: f64,
    },
    /// A hedge delay multiple was zero, negative, or NaN.
    InvalidHedgeDelay {
        /// The offending delay multiple.
        delay: f64,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::NegativeRate { rate } => {
                write!(f, "fault rate must be finite and >= 0, got {rate}")
            }
            FaultSpecError::InvalidProbability { prob } => {
                write!(f, "warned probability must lie in [0, 1], got {prob}")
            }
            FaultSpecError::NonPositiveDuration { seconds } => {
                write!(f, "fault epoch duration must be > 0 s, got {seconds}")
            }
            FaultSpecError::SlowdownBelowOne { multiplier } => {
                write!(f, "straggler slowdown must be >= 1, got {multiplier}")
            }
            FaultSpecError::InvalidSlowdownRange { min, max } => {
                write!(f, "straggler slowdown range inverted: [{min}, {max}]")
            }
            FaultSpecError::InvalidAlpha { alpha } => {
                write!(f, "straggler Pareto alpha must be > 0, got {alpha}")
            }
            FaultSpecError::InvalidHedgeDelay { delay } => {
                write!(f, "hedge delay multiple must be > 0, got {delay}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Request hedging: issue a backup copy of a request once it has run
/// `delay_multiple` times its nominal service time, and keep whichever
/// copy finishes first.
///
/// Under the simulator's analytic cancellation model a request whose
/// per-request straggle multiplier is `m` completes in
/// `min(m, 1 + delay_multiple)` nominal service times: the backup starts
/// after the delay, runs at nominal speed (straggles are per-request, so
/// the backup re-rolls and the winning copy is overwhelmingly the healthy
/// one for tail multipliers), and the loser is cancelled. Hedging only
/// changes behavior when per-request stragglers are armed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeSpec {
    /// Backup-issue delay as a multiple of the request's nominal service
    /// time. `INFINITY` (the [`HedgeSpec::none`] default) never hedges.
    pub delay_multiple: f64,
}

impl Default for HedgeSpec {
    fn default() -> Self {
        HedgeSpec::none()
    }
}

impl HedgeSpec {
    /// Hedging disabled: the backup never fires.
    pub fn none() -> Self {
        HedgeSpec {
            delay_multiple: f64::INFINITY,
        }
    }

    /// Hedge after `delay_multiple` nominal service times (e.g. `2.0`
    /// caps any straggled request at 3x nominal).
    pub fn after(delay_multiple: f64) -> Self {
        HedgeSpec { delay_multiple }
    }

    /// True when hedging is disabled.
    pub fn is_none(&self) -> bool {
        self.delay_multiple.is_infinite()
    }

    /// Checks the delay knob.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        if self.delay_multiple.is_nan() || self.delay_multiple <= 0.0 {
            return Err(FaultSpecError::InvalidHedgeDelay {
                delay: self.delay_multiple,
            });
        }
        Ok(())
    }
}

/// The fault condition of one unit at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultState {
    /// No active fault.
    Healthy,
    /// The unit is revoked: it serves nothing until the epoch ends.
    Revoked {
        /// Whether the scheduler was warned in advance (graceful drain).
        warned: bool,
    },
    /// The unit runs slowed by the given multiplier (>= 1).
    Straggling {
        /// Service-time multiplier for the epoch.
        slowdown: f64,
    },
}

impl FaultState {
    /// True unless `Healthy`.
    pub fn is_faulted(&self) -> bool {
        !matches!(self, FaultState::Healthy)
    }

    /// Combines an externally-imposed machine-wide state with a local
    /// per-unit state: revocation dominates (external warned flag wins
    /// when both revoke), straggles compound multiplicatively.
    pub fn combine(external: FaultState, local: FaultState) -> FaultState {
        match (external, local) {
            (FaultState::Revoked { warned }, _) | (_, FaultState::Revoked { warned }) => {
                FaultState::Revoked { warned }
            }
            (FaultState::Straggling { slowdown: a }, FaultState::Straggling { slowdown: b }) => {
                FaultState::Straggling { slowdown: a * b }
            }
            (FaultState::Straggling { slowdown }, _) | (_, FaultState::Straggling { slowdown }) => {
                FaultState::Straggling { slowdown }
            }
            (FaultState::Healthy, FaultState::Healthy) => FaultState::Healthy,
        }
    }
}

/// SplitMix64-style per-unit seed derivation, so unit `i`'s timeline
/// never depends on how many units exist or which are queried.
fn unit_seed(base: u64, unit: u64) -> u64 {
    let mut z = base ^ unit.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One fault family's lazily-advanced episode window for one unit.
#[derive(Debug, Clone)]
struct Episode {
    rng: SimRng,
    start: f64,
    end: f64,
    /// Warned flag (revocations) — unused for stragglers.
    warned: bool,
    /// Slowdown multiplier (stragglers) — unused for revocations.
    slowdown: f64,
}

/// A spec expanded into independent per-unit fault timelines.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    revocations: Vec<Episode>,
    stragglers: Vec<Episode>,
    rev_gap: Option<Exponential>,
    str_gap: Option<Exponential>,
    str_mult: Option<BoundedPareto>,
}

impl FaultPlan {
    /// Expands `spec` into `units` independent timelines. `base_seed`
    /// should come from a dedicated split of the run seed so fault
    /// randomness never perturbs demand/arrival/jitter streams.
    ///
    /// # Panics
    /// Panics if the spec does not [`FaultSpec::validate`] — validate at
    /// the scenario/cluster boundary first.
    pub fn new(spec: FaultSpec, base_seed: u64, units: usize) -> Self {
        spec.validate().expect("FaultPlan::new: invalid FaultSpec");
        let rev_gap = (spec.revocation_rate_per_s > 0.0)
            .then(|| Exponential::new(spec.revocation_rate_per_s));
        let str_gap =
            (spec.straggler_rate_per_s > 0.0).then(|| Exponential::new(spec.straggler_rate_per_s));
        let str_mult = (spec.straggler_rate_per_s > 0.0 && spec.straggler_max > spec.straggler_min)
            .then(|| {
                BoundedPareto::new(spec.straggler_min, spec.straggler_max, spec.straggler_alpha)
            });
        let mut plan = FaultPlan {
            spec,
            revocations: Vec::with_capacity(units),
            stragglers: Vec::with_capacity(units),
            rev_gap,
            str_gap,
            str_mult,
        };
        for unit in 0..units as u64 {
            let seed = unit_seed(base_seed, unit);
            let mut rev = Episode {
                rng: SimRng::seed(unit_seed(seed, 0x5245_564f)), // "REVO"
                start: f64::INFINITY,
                end: f64::INFINITY,
                warned: false,
                slowdown: 1.0,
            };
            let mut str_ep = Episode {
                rng: SimRng::seed(unit_seed(seed, 0x5354_5247)), // "STRG"
                start: f64::INFINITY,
                end: f64::INFINITY,
                warned: false,
                slowdown: 1.0,
            };
            plan.schedule_revocation(&mut rev, 0.0);
            plan.schedule_straggle(&mut str_ep, 0.0);
            plan.revocations.push(rev);
            plan.stragglers.push(str_ep);
        }
        plan
    }

    /// Number of units this plan covers.
    pub fn units(&self) -> usize {
        self.revocations.len()
    }

    fn schedule_revocation(&self, ep: &mut Episode, from: f64) {
        if let Some(gap) = &self.rev_gap {
            ep.start = from + gap.sample(&mut ep.rng);
            ep.end = ep.start + self.spec.revocation_duration_s;
            ep.warned = ep.rng.chance(self.spec.warned_prob);
        }
    }

    fn schedule_straggle(&self, ep: &mut Episode, from: f64) {
        if let Some(gap) = &self.str_gap {
            ep.start = from + gap.sample(&mut ep.rng);
            ep.end = ep.start + self.spec.straggler_duration_s;
            ep.slowdown = match &self.str_mult {
                Some(pareto) => pareto.sample(&mut ep.rng),
                None => self.spec.straggler_min,
            };
        }
    }

    /// The fault state of `unit` at time `t`. Queries must be
    /// time-monotonic per unit (interval starts are). Revocation wins
    /// when both families overlap.
    pub fn state(&mut self, unit: usize, t: f64) -> FaultState {
        // Advance each family's window past expired episodes. The
        // episodes are taken out of `self` so the scheduling helpers can
        // borrow the plan immutably.
        let mut rev = std::mem::replace(&mut self.revocations[unit], Episode::placeholder());
        while t >= rev.end {
            let end = rev.end;
            self.schedule_revocation(&mut rev, end);
        }
        let revoked = t >= rev.start;
        let warned = rev.warned;
        self.revocations[unit] = rev;

        let mut st = std::mem::replace(&mut self.stragglers[unit], Episode::placeholder());
        while t >= st.end {
            let end = st.end;
            self.schedule_straggle(&mut st, end);
        }
        let straggling = t >= st.start;
        let slowdown = st.slowdown;
        self.stragglers[unit] = st;

        if revoked {
            FaultState::Revoked { warned }
        } else if straggling {
            FaultState::Straggling { slowdown }
        } else {
            FaultState::Healthy
        }
    }
}

impl Episode {
    fn placeholder() -> Self {
        Episode {
            rng: SimRng::seed(0),
            start: f64::INFINITY,
            end: f64::INFINITY,
            warned: false,
            slowdown: 1.0,
        }
    }

    fn fresh(seed: u64) -> Self {
        Episode {
            rng: SimRng::seed(seed),
            ..Episode::placeholder()
        }
    }
}

/// Schedules the next revocation window after `from`, mirroring
/// [`FaultPlan`]'s per-unit scheduling (same RNG call order) so domain
/// and unit timelines are statistically interchangeable.
fn schedule_rev(
    ep: &mut Episode,
    from: f64,
    gap: &Option<Exponential>,
    duration_s: f64,
    warned_prob: f64,
) {
    if let Some(gap) = gap {
        ep.start = from + gap.sample(&mut ep.rng);
        ep.end = ep.start + duration_s;
        ep.warned = ep.rng.chance(warned_prob);
    }
}

/// Straggler counterpart of [`schedule_rev`].
fn schedule_str(
    ep: &mut Episode,
    from: f64,
    gap: &Option<Exponential>,
    duration_s: f64,
    mult: &Option<BoundedPareto>,
    min: f64,
) {
    if let Some(gap) = gap {
        ep.start = from + gap.sample(&mut ep.rng);
        ep.end = ep.start + duration_s;
        ep.slowdown = match mult {
            Some(pareto) => pareto.sample(&mut ep.rng),
            None => min,
        };
    }
}

/// Declarative correlated-fault configuration: revocation and straggler
/// *waves* that hit a whole zone or rack at once.
///
/// Each armed family is a Poisson process per *domain* (not per node);
/// when a domain episode is active, every node in that domain is revoked
/// (or straggling at the same shared multiplier) simultaneously — that is
/// the correlation. A [`WavePlan`] expands the spec over a
/// [`TopologySpec`] and layers on top of the independent per-node
/// [`FaultPlan`] via [`FaultState::combine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainFaultSpec {
    /// Poisson rate of zone-wide revocation waves per zone, per second.
    /// Zero disables them.
    pub zone_revocation_rate_per_s: f64,
    /// Length of each zone revocation wave, seconds.
    pub zone_revocation_duration_s: f64,
    /// Poisson rate of rack-wide revocation waves per rack, per second.
    pub rack_revocation_rate_per_s: f64,
    /// Length of each rack revocation wave, seconds.
    pub rack_revocation_duration_s: f64,
    /// Poisson rate of zone-wide straggler waves per zone, per second.
    pub zone_straggler_rate_per_s: f64,
    /// Length of each zone straggler wave, seconds.
    pub zone_straggler_duration_s: f64,
    /// Poisson rate of rack-wide straggler waves per rack, per second.
    pub rack_straggler_rate_per_s: f64,
    /// Length of each rack straggler wave, seconds.
    pub rack_straggler_duration_s: f64,
    /// Probability a revocation wave is warned (graceful drain).
    pub warned_prob: f64,
    /// Pareto shape of the shared wave slowdown multiplier.
    pub straggler_alpha: f64,
    /// Minimum wave slowdown multiplier (>= 1).
    pub straggler_min: f64,
    /// Maximum wave slowdown multiplier (>= `straggler_min`).
    pub straggler_max: f64,
}

impl Default for DomainFaultSpec {
    fn default() -> Self {
        DomainFaultSpec::none()
    }
}

impl DomainFaultSpec {
    /// No correlated faults — byte-identical to a simulation without this
    /// subsystem.
    pub fn none() -> Self {
        DomainFaultSpec {
            zone_revocation_rate_per_s: 0.0,
            zone_revocation_duration_s: 0.0,
            rack_revocation_rate_per_s: 0.0,
            rack_revocation_duration_s: 0.0,
            zone_straggler_rate_per_s: 0.0,
            zone_straggler_duration_s: 0.0,
            rack_straggler_rate_per_s: 0.0,
            rack_straggler_duration_s: 0.0,
            warned_prob: 0.0,
            straggler_alpha: 1.0,
            straggler_min: 1.0,
            straggler_max: 1.0,
        }
    }

    /// Enables zone-wide revocation waves.
    pub fn with_zone_revocations(mut self, rate_per_s: f64, duration_s: f64) -> Self {
        self.zone_revocation_rate_per_s = rate_per_s;
        self.zone_revocation_duration_s = duration_s;
        self
    }

    /// Enables rack-wide revocation waves.
    pub fn with_rack_revocations(mut self, rate_per_s: f64, duration_s: f64) -> Self {
        self.rack_revocation_rate_per_s = rate_per_s;
        self.rack_revocation_duration_s = duration_s;
        self
    }

    /// Enables zone-wide straggler waves.
    pub fn with_zone_stragglers(mut self, rate_per_s: f64, duration_s: f64) -> Self {
        self.zone_straggler_rate_per_s = rate_per_s;
        self.zone_straggler_duration_s = duration_s;
        self
    }

    /// Enables rack-wide straggler waves.
    pub fn with_rack_stragglers(mut self, rate_per_s: f64, duration_s: f64) -> Self {
        self.rack_straggler_rate_per_s = rate_per_s;
        self.rack_straggler_duration_s = duration_s;
        self
    }

    /// Sets the probability that a revocation wave is warned.
    pub fn with_warned(mut self, prob: f64) -> Self {
        self.warned_prob = prob;
        self
    }

    /// Sets the shared slowdown distribution for straggler waves:
    /// `BoundedPareto(min, max, alpha)` (or exactly `min` when
    /// `min == max`).
    pub fn with_slowdowns(mut self, alpha: f64, min: f64, max: f64) -> Self {
        self.straggler_alpha = alpha;
        self.straggler_min = min;
        self.straggler_max = max;
        self
    }

    /// True when every wave family is disabled.
    pub fn is_none(&self) -> bool {
        self.zone_revocation_rate_per_s == 0.0
            && self.rack_revocation_rate_per_s == 0.0
            && self.zone_straggler_rate_per_s == 0.0
            && self.rack_straggler_rate_per_s == 0.0
    }

    fn has_stragglers(&self) -> bool {
        self.zone_straggler_rate_per_s > 0.0 || self.rack_straggler_rate_per_s > 0.0
    }

    /// Checks every knob, returning the first violation.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        for &rate in &[
            self.zone_revocation_rate_per_s,
            self.rack_revocation_rate_per_s,
            self.zone_straggler_rate_per_s,
            self.rack_straggler_rate_per_s,
        ] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(FaultSpecError::NegativeRate { rate });
            }
        }
        if !self.warned_prob.is_finite() || !(0.0..=1.0).contains(&self.warned_prob) {
            return Err(FaultSpecError::InvalidProbability {
                prob: self.warned_prob,
            });
        }
        for &(rate, duration) in &[
            (
                self.zone_revocation_rate_per_s,
                self.zone_revocation_duration_s,
            ),
            (
                self.rack_revocation_rate_per_s,
                self.rack_revocation_duration_s,
            ),
            (
                self.zone_straggler_rate_per_s,
                self.zone_straggler_duration_s,
            ),
            (
                self.rack_straggler_rate_per_s,
                self.rack_straggler_duration_s,
            ),
        ] {
            if rate > 0.0 && (!duration.is_finite() || duration <= 0.0) {
                return Err(FaultSpecError::NonPositiveDuration { seconds: duration });
            }
        }
        if self.has_stragglers() {
            if !self.straggler_min.is_finite() || self.straggler_min < 1.0 {
                return Err(FaultSpecError::SlowdownBelowOne {
                    multiplier: self.straggler_min,
                });
            }
            if !self.straggler_max.is_finite() || self.straggler_max < self.straggler_min {
                return Err(FaultSpecError::InvalidSlowdownRange {
                    min: self.straggler_min,
                    max: self.straggler_max,
                });
            }
            if !self.straggler_alpha.is_finite() || self.straggler_alpha <= 0.0 {
                return Err(FaultSpecError::InvalidAlpha {
                    alpha: self.straggler_alpha,
                });
            }
        }
        Ok(())
    }
}

/// One domain's pair of wave timelines (revocations + stragglers).
#[derive(Debug, Clone)]
struct DomainTimeline {
    rev: Episode,
    straggle: Episode,
}

/// Domain-seed salts so zone and rack streams never collide with each
/// other or with [`FaultPlan`]'s per-unit streams.
const ZONE_SALT: u64 = 0x5a4f_4e45; // "ZONE"
const RACK_SALT: u64 = 0x5241_434b; // "RACK"

/// A [`DomainFaultSpec`] expanded over a [`TopologySpec`] into per-zone
/// and per-rack wave timelines.
///
/// Every domain gets its own split-seeded RNG pair (one stream per
/// family), derived from `base_seed` with a domain-kind salt, so a zone's
/// wave history is independent of rack count, query order, and the
/// per-node [`FaultPlan`] streams. The per-node state is the
/// [`FaultState::combine`] of the node's zone and rack waves; callers
/// combine that again with any independent per-node plan.
#[derive(Debug, Clone)]
pub struct WavePlan {
    spec: DomainFaultSpec,
    topo: TopologySpec,
    zones: Vec<DomainTimeline>,
    racks: Vec<DomainTimeline>,
    zone_rev_gap: Option<Exponential>,
    zone_str_gap: Option<Exponential>,
    rack_rev_gap: Option<Exponential>,
    rack_str_gap: Option<Exponential>,
    str_mult: Option<BoundedPareto>,
}

impl WavePlan {
    /// Expands `spec` over `topo`. `base_seed` should come from a
    /// dedicated `fork("waves")` split of the run seed so wave randomness
    /// never perturbs demand/arrival/jitter or per-node fault streams.
    ///
    /// # Panics
    /// Panics if the spec does not [`DomainFaultSpec::validate`] —
    /// validate at the cluster boundary first.
    pub fn new(spec: DomainFaultSpec, topo: TopologySpec, base_seed: u64) -> Self {
        spec.validate()
            .expect("WavePlan::new: invalid DomainFaultSpec");
        let gap = |rate: f64| (rate > 0.0).then(|| Exponential::new(rate));
        let str_mult =
            (spec.has_stragglers() && spec.straggler_max > spec.straggler_min).then(|| {
                BoundedPareto::new(spec.straggler_min, spec.straggler_max, spec.straggler_alpha)
            });
        let mut plan = WavePlan {
            spec,
            topo,
            zones: Vec::with_capacity(topo.num_zones()),
            racks: Vec::with_capacity(topo.num_racks()),
            zone_rev_gap: gap(spec.zone_revocation_rate_per_s),
            zone_str_gap: gap(spec.zone_straggler_rate_per_s),
            rack_rev_gap: gap(spec.rack_revocation_rate_per_s),
            rack_str_gap: gap(spec.rack_straggler_rate_per_s),
            str_mult,
        };
        for zone in 0..topo.num_zones() as u64 {
            let seed = unit_seed(base_seed ^ ZONE_SALT, zone);
            let mut rev = Episode::fresh(unit_seed(seed, 0x5245_564f)); // "REVO"
            let mut straggle = Episode::fresh(unit_seed(seed, 0x5354_5247)); // "STRG"
            schedule_rev(
                &mut rev,
                0.0,
                &plan.zone_rev_gap,
                spec.zone_revocation_duration_s,
                spec.warned_prob,
            );
            schedule_str(
                &mut straggle,
                0.0,
                &plan.zone_str_gap,
                spec.zone_straggler_duration_s,
                &plan.str_mult,
                spec.straggler_min,
            );
            plan.zones.push(DomainTimeline { rev, straggle });
        }
        for rack in 0..topo.num_racks() as u64 {
            let seed = unit_seed(base_seed ^ RACK_SALT, rack);
            let mut rev = Episode::fresh(unit_seed(seed, 0x5245_564f));
            let mut straggle = Episode::fresh(unit_seed(seed, 0x5354_5247));
            schedule_rev(
                &mut rev,
                0.0,
                &plan.rack_rev_gap,
                spec.rack_revocation_duration_s,
                spec.warned_prob,
            );
            schedule_str(
                &mut straggle,
                0.0,
                &plan.rack_str_gap,
                spec.rack_straggler_duration_s,
                &plan.str_mult,
                spec.straggler_min,
            );
            plan.racks.push(DomainTimeline { rev, straggle });
        }
        plan
    }

    /// The topology this plan fans out over.
    pub fn topology(&self) -> &TopologySpec {
        &self.topo
    }

    /// The wave state of zone `zone` at time `t`. Queries must be
    /// time-monotonic per domain (interval starts are); repeated queries
    /// at the same `t` are idempotent.
    pub fn zone_state(&mut self, zone: usize, t: f64) -> FaultState {
        let tl = &mut self.zones[zone];
        while t >= tl.rev.end {
            let end = tl.rev.end;
            schedule_rev(
                &mut tl.rev,
                end,
                &self.zone_rev_gap,
                self.spec.zone_revocation_duration_s,
                self.spec.warned_prob,
            );
        }
        while t >= tl.straggle.end {
            let end = tl.straggle.end;
            schedule_str(
                &mut tl.straggle,
                end,
                &self.zone_str_gap,
                self.spec.zone_straggler_duration_s,
                &self.str_mult,
                self.spec.straggler_min,
            );
        }
        timeline_state(tl, t)
    }

    /// The wave state of (global) rack `rack` at time `t`.
    pub fn rack_state(&mut self, rack: usize, t: f64) -> FaultState {
        let tl = &mut self.racks[rack];
        while t >= tl.rev.end {
            let end = tl.rev.end;
            schedule_rev(
                &mut tl.rev,
                end,
                &self.rack_rev_gap,
                self.spec.rack_revocation_duration_s,
                self.spec.warned_prob,
            );
        }
        while t >= tl.straggle.end {
            let end = tl.straggle.end;
            schedule_str(
                &mut tl.straggle,
                end,
                &self.rack_str_gap,
                self.spec.rack_straggler_duration_s,
                &self.str_mult,
                self.spec.straggler_min,
            );
        }
        timeline_state(tl, t)
    }

    /// The combined wave state of `node` at time `t`: its zone's wave
    /// combined with its rack's ([`FaultState::combine`] — revocation
    /// dominates, straggles compound).
    pub fn state(&mut self, node: usize, t: f64) -> FaultState {
        let zone = self.topo.zone_of(node);
        let rack = self.topo.rack_of(node);
        let zs = self.zone_state(zone, t);
        let rs = self.rack_state(rack, t);
        FaultState::combine(zs, rs)
    }
}

/// The instantaneous state of one domain timeline (revocation wins).
fn timeline_state(tl: &DomainTimeline, t: f64) -> FaultState {
    if t >= tl.rev.start && t < tl.rev.end {
        FaultState::Revoked {
            warned: tl.rev.warned,
        }
    } else if t >= tl.straggle.start && t < tl.straggle.end {
        FaultState::Straggling {
            slowdown: tl.straggle.slowdown,
        }
    } else {
        FaultState::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty() -> FaultSpec {
        FaultSpec::none()
            .with_revocations(0.2, 1.5)
            .with_warned(0.5)
            .with_stragglers(0.3, 2.0, 1.5, 2.0, 8.0)
    }

    #[test]
    fn none_is_none_and_validates() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        assert_eq!(spec.validate(), Ok(()));
        assert!(!faulty().is_none());
        assert_eq!(faulty().validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let bad_rate = FaultSpec::none().with_revocations(-1.0, 1.0);
        assert!(matches!(
            bad_rate.validate(),
            Err(FaultSpecError::NegativeRate { .. })
        ));
        let bad_prob = faulty().with_warned(1.5);
        assert!(matches!(
            bad_prob.validate(),
            Err(FaultSpecError::InvalidProbability { prob }) if prob == 1.5
        ));
        let bad_dur = FaultSpec::none().with_revocations(0.1, 0.0);
        assert!(matches!(
            bad_dur.validate(),
            Err(FaultSpecError::NonPositiveDuration { .. })
        ));
        let slow = FaultSpec::none().with_stragglers(0.1, 1.0, 1.5, 0.5, 8.0);
        assert!(matches!(
            slow.validate(),
            Err(FaultSpecError::SlowdownBelowOne { .. })
        ));
        let inverted = FaultSpec::none().with_stragglers(0.1, 1.0, 1.5, 4.0, 2.0);
        assert!(matches!(
            inverted.validate(),
            Err(FaultSpecError::InvalidSlowdownRange { .. })
        ));
        let alpha = FaultSpec::none().with_stragglers(0.1, 1.0, 0.0, 2.0, 8.0);
        assert!(matches!(
            alpha.validate(),
            Err(FaultSpecError::InvalidAlpha { .. })
        ));
    }

    #[test]
    fn timelines_are_reproducible_and_unit_independent() {
        // The same unit produces the same state sequence regardless of
        // how many other units the plan holds or whether they're queried.
        let mut wide = FaultPlan::new(faulty(), 99, 16);
        let mut narrow = FaultPlan::new(faulty(), 99, 4);
        for step in 0..400 {
            let t = step as f64 * 0.25;
            // Query wide's units in reverse to shuffle cross-unit order.
            let w3 = wide.state(3, t);
            let w0 = wide.state(0, t);
            assert_eq!(narrow.state(0, t), w0, "unit 0 diverged at t={t}");
            assert_eq!(narrow.state(3, t), w3, "unit 3 diverged at t={t}");
        }
    }

    #[test]
    fn episodes_actually_fire_with_sane_parameters() {
        let mut plan = FaultPlan::new(faulty(), 7, 8);
        let (mut revoked, mut straggling) = (0u32, 0u32);
        for step in 0..2000 {
            let t = step as f64 * 0.1;
            for unit in 0..8 {
                match plan.state(unit, t) {
                    FaultState::Revoked { .. } => revoked += 1,
                    FaultState::Straggling { slowdown } => {
                        assert!((2.0..=8.0).contains(&slowdown), "slowdown {slowdown}");
                        straggling += 1;
                    }
                    FaultState::Healthy => {}
                }
            }
        }
        assert!(revoked > 100, "revocations too rare: {revoked}");
        assert!(straggling > 100, "stragglers too rare: {straggling}");
    }

    fn wavy() -> DomainFaultSpec {
        DomainFaultSpec::none()
            .with_zone_revocations(0.1, 2.0)
            .with_rack_revocations(0.2, 1.0)
            .with_zone_stragglers(0.15, 2.5)
            .with_rack_stragglers(0.25, 1.5)
            .with_warned(0.5)
            .with_slowdowns(1.5, 2.0, 8.0)
    }

    #[test]
    fn domain_spec_none_is_none_and_validates() {
        let spec = DomainFaultSpec::none();
        assert!(spec.is_none());
        assert_eq!(spec.validate(), Ok(()));
        assert!(!wavy().is_none());
        assert_eq!(wavy().validate(), Ok(()));
        assert!(matches!(
            DomainFaultSpec::none()
                .with_zone_revocations(-1.0, 1.0)
                .validate(),
            Err(FaultSpecError::NegativeRate { .. })
        ));
        assert!(matches!(
            DomainFaultSpec::none()
                .with_rack_revocations(0.1, 0.0)
                .validate(),
            Err(FaultSpecError::NonPositiveDuration { .. })
        ));
        assert!(matches!(
            wavy().with_slowdowns(1.5, 0.5, 8.0).validate(),
            Err(FaultSpecError::SlowdownBelowOne { .. })
        ));
        assert!(matches!(
            wavy().with_warned(-0.1).validate(),
            Err(FaultSpecError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn waves_hit_every_node_of_a_domain_at_once() {
        let topo = TopologySpec::new(2, 2, 4).unwrap();
        let mut plan = WavePlan::new(wavy(), topo, 1234);
        let mut correlated = 0u32;
        for step in 0..2000 {
            let t = step as f64 * 0.1;
            for zone in 0..topo.num_zones() {
                let zs = plan.zone_state(zone, t);
                if !zs.is_faulted() {
                    continue;
                }
                correlated += 1;
                // Every node of the zone sees at least the zone wave
                // (possibly compounded/overridden by its rack's wave).
                for node in 0..topo.nodes() {
                    if topo.zone_of(node) != zone {
                        continue;
                    }
                    let ns = plan.state(node, t);
                    match (zs, ns) {
                        (FaultState::Revoked { .. }, FaultState::Revoked { .. }) => {}
                        (FaultState::Straggling { .. }, s) => {
                            assert!(s.is_faulted(), "node {node} healthy in zone wave at {t}")
                        }
                        (z, n) => panic!("zone {z:?} but node {n:?} at t={t}"),
                    }
                }
            }
        }
        assert!(correlated > 50, "zone waves too rare: {correlated}");
    }

    #[test]
    fn wave_timelines_are_reproducible_and_query_order_independent() {
        let topo = TopologySpec::new(4, 2, 2).unwrap();
        let mut a = WavePlan::new(wavy(), topo, 77);
        let mut b = WavePlan::new(wavy(), topo, 77);
        for step in 0..500 {
            let t = step as f64 * 0.2;
            // Query a forward, b backward — per-domain streams must not
            // care about cross-domain query order.
            let fwd: Vec<_> = (0..topo.nodes()).map(|n| a.state(n, t)).collect();
            let bwd: Vec<_> = (0..topo.nodes()).rev().map(|n| b.state(n, t)).collect();
            let bwd: Vec<_> = bwd.into_iter().rev().collect();
            assert_eq!(fwd, bwd, "diverged at t={t}");
        }
        // A different seed produces a different history.
        let mut c = WavePlan::new(wavy(), topo, 78);
        let mut differs = false;
        for step in 0..500 {
            let t = step as f64 * 0.2;
            let b0 = b.state(0, t);
            if c.state(0, t) != b0 {
                differs = true;
            }
        }
        assert!(differs, "seed 78 reproduced seed 77's wave history");
    }

    #[test]
    fn hedge_spec_validates_and_none_is_none() {
        assert!(HedgeSpec::none().is_none());
        assert_eq!(HedgeSpec::none().validate(), Ok(()));
        assert!(!HedgeSpec::after(2.0).is_none());
        assert_eq!(HedgeSpec::after(2.0).validate(), Ok(()));
        assert!(matches!(
            HedgeSpec::after(0.0).validate(),
            Err(FaultSpecError::InvalidHedgeDelay { .. })
        ));
        assert!(matches!(
            HedgeSpec::after(f64::NAN).validate(),
            Err(FaultSpecError::InvalidHedgeDelay { .. })
        ));
    }

    #[test]
    fn request_straggler_knobs_validate() {
        let spec = FaultSpec::none().with_request_stragglers(0.05, 1.5, 2.0, 10.0);
        assert!(!spec.is_none());
        assert!(!spec.has_unit_faults());
        assert!(spec.has_request_stragglers());
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(spec.request_only(), spec);
        let full = faulty().with_request_stragglers(0.05, 1.5, 2.0, 10.0);
        assert!(full.has_unit_faults());
        assert_eq!(full.request_only(), spec);
        assert!(matches!(
            FaultSpec::none()
                .with_request_stragglers(1.5, 1.5, 2.0, 10.0)
                .validate(),
            Err(FaultSpecError::InvalidProbability { .. })
        ));
        assert!(matches!(
            FaultSpec::none()
                .with_request_stragglers(0.1, 1.5, 0.5, 10.0)
                .validate(),
            Err(FaultSpecError::SlowdownBelowOne { .. })
        ));
        assert!(matches!(
            FaultSpec::none()
                .with_request_stragglers(0.1, 1.5, 4.0, 2.0)
                .validate(),
            Err(FaultSpecError::InvalidSlowdownRange { .. })
        ));
        assert!(matches!(
            FaultSpec::none()
                .with_request_stragglers(0.1, 0.0, 2.0, 10.0)
                .validate(),
            Err(FaultSpecError::InvalidAlpha { .. })
        ));
    }

    #[test]
    fn degenerate_slowdown_range_uses_constant_multiplier() {
        let spec = FaultSpec::none().with_stragglers(5.0, 1.0, 1.5, 3.0, 3.0);
        assert_eq!(spec.validate(), Ok(()));
        let mut plan = FaultPlan::new(spec, 1, 2);
        let mut seen = false;
        for step in 0..200 {
            if let FaultState::Straggling { slowdown } = plan.state(0, step as f64 * 0.1) {
                assert_eq!(slowdown, 3.0);
                seen = true;
            }
        }
        assert!(seen, "no straggler episode fired");
    }
}
