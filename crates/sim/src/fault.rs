//! Deterministic fault injection: transient server revocations and
//! heavy-tailed straggler episodes.
//!
//! A [`FaultSpec`] declares two independent per-server fault families:
//!
//! * **Transient revocations** (CloudCoaster-style): a server disappears
//!   for a fixed epoch. Revocations arrive as a Poisson process per
//!   server; each episode is *warned* (the scheduler saw it coming and
//!   drains gracefully) or *unwarned* (in-flight work is preempted and
//!   pays the migration stall) with probability `warned_prob`.
//! * **Straggler episodes** (START-style): a server keeps running but
//!   slows down by a heavy-tailed multiplier drawn from a bounded Pareto,
//!   for a fixed epoch. Stragglers ride the existing DVFS re-key path —
//!   the server set is unchanged, only effective rates move.
//!
//! A [`FaultPlan`] expands a spec into per-unit timelines ("unit" is a
//! physical core for the engine, a node for the cluster tier). Every unit
//! gets its own split-seeded [`SimRng`] *pair* (one stream per fault
//! family), so timelines are reproducible and independent of how many
//! other units exist, which units are queried, or what order queries
//! arrive in across units. Queries per unit must be time-monotonic — the
//! engine and cluster both sample at interval starts, which are.
//!
//! `FaultSpec::none()` builds no plan at all: the fault-off path draws
//! zero random numbers and executes the exact pre-fault code, which the
//! `fault_equivalence` differential suite pins byte-for-byte.

use crate::dist::{BoundedPareto, Exponential};
use crate::rng::{Sampler, SimRng};
use std::fmt;

/// Declarative fault configuration. `Copy`, like [`crate::EngineSpec`],
/// so specs can be embedded in engine/cluster specs freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Poisson rate of revocation episodes per server, per second.
    /// Zero disables revocations.
    pub revocation_rate_per_s: f64,
    /// Length of each revocation epoch, seconds.
    pub revocation_duration_s: f64,
    /// Probability a revocation is warned (graceful drain, no stall, and
    /// the cluster tier may re-dispatch stranded work immediately).
    pub warned_prob: f64,
    /// Poisson rate of straggler episodes per server, per second.
    /// Zero disables stragglers.
    pub straggler_rate_per_s: f64,
    /// Length of each straggler epoch, seconds.
    pub straggler_duration_s: f64,
    /// Pareto shape of the slowdown multiplier (smaller = heavier tail).
    pub straggler_alpha: f64,
    /// Minimum slowdown multiplier (must be >= 1: a straggler never
    /// speeds up).
    pub straggler_min: f64,
    /// Maximum slowdown multiplier (>= `straggler_min`).
    pub straggler_max: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// No faults at all — the simulator behaves exactly as without this
    /// subsystem.
    pub fn none() -> Self {
        FaultSpec {
            revocation_rate_per_s: 0.0,
            revocation_duration_s: 0.0,
            warned_prob: 0.0,
            straggler_rate_per_s: 0.0,
            straggler_duration_s: 0.0,
            straggler_alpha: 1.0,
            straggler_min: 1.0,
            straggler_max: 1.0,
        }
    }

    /// Enables transient revocations at `rate_per_s` per server, each
    /// lasting `duration_s`.
    pub fn with_revocations(mut self, rate_per_s: f64, duration_s: f64) -> Self {
        self.revocation_rate_per_s = rate_per_s;
        self.revocation_duration_s = duration_s;
        self
    }

    /// Sets the probability that a revocation is warned.
    pub fn with_warned(mut self, prob: f64) -> Self {
        self.warned_prob = prob;
        self
    }

    /// Enables straggler episodes at `rate_per_s` per server, each
    /// lasting `duration_s`, with slowdown multipliers drawn from
    /// `BoundedPareto(min, max, alpha)` (or exactly `min` when
    /// `min == max`).
    pub fn with_stragglers(
        mut self,
        rate_per_s: f64,
        duration_s: f64,
        alpha: f64,
        min: f64,
        max: f64,
    ) -> Self {
        self.straggler_rate_per_s = rate_per_s;
        self.straggler_duration_s = duration_s;
        self.straggler_alpha = alpha;
        self.straggler_min = min;
        self.straggler_max = max;
        self
    }

    /// True when both fault families are disabled.
    pub fn is_none(&self) -> bool {
        self.revocation_rate_per_s == 0.0 && self.straggler_rate_per_s == 0.0
    }

    /// Checks every knob, returning the first violation. A spec that
    /// passes here can never panic deeper in the stack.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        for &rate in &[self.revocation_rate_per_s, self.straggler_rate_per_s] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(FaultSpecError::NegativeRate { rate });
            }
        }
        if !self.warned_prob.is_finite() || !(0.0..=1.0).contains(&self.warned_prob) {
            return Err(FaultSpecError::InvalidProbability {
                prob: self.warned_prob,
            });
        }
        if self.revocation_rate_per_s > 0.0
            && (!self.revocation_duration_s.is_finite() || self.revocation_duration_s <= 0.0)
        {
            return Err(FaultSpecError::NonPositiveDuration {
                seconds: self.revocation_duration_s,
            });
        }
        if self.straggler_rate_per_s > 0.0 {
            if !self.straggler_duration_s.is_finite() || self.straggler_duration_s <= 0.0 {
                return Err(FaultSpecError::NonPositiveDuration {
                    seconds: self.straggler_duration_s,
                });
            }
            if !self.straggler_min.is_finite() || self.straggler_min < 1.0 {
                return Err(FaultSpecError::SlowdownBelowOne {
                    multiplier: self.straggler_min,
                });
            }
            if !self.straggler_max.is_finite() || self.straggler_max < self.straggler_min {
                return Err(FaultSpecError::InvalidSlowdownRange {
                    min: self.straggler_min,
                    max: self.straggler_max,
                });
            }
            if !self.straggler_alpha.is_finite() || self.straggler_alpha <= 0.0 {
                return Err(FaultSpecError::InvalidAlpha {
                    alpha: self.straggler_alpha,
                });
            }
        }
        Ok(())
    }
}

/// Why a [`FaultSpec`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpecError {
    /// A fault rate was negative or non-finite.
    NegativeRate {
        /// The offending rate, per second.
        rate: f64,
    },
    /// `warned_prob` was outside `[0, 1]` or non-finite.
    InvalidProbability {
        /// The offending probability.
        prob: f64,
    },
    /// An episode duration was zero, negative, or non-finite while its
    /// fault family was enabled.
    NonPositiveDuration {
        /// The offending duration, seconds.
        seconds: f64,
    },
    /// The straggler slowdown floor was below 1 (a straggler never runs
    /// faster than healthy).
    SlowdownBelowOne {
        /// The offending minimum multiplier.
        multiplier: f64,
    },
    /// The straggler slowdown range was inverted (`max < min`).
    InvalidSlowdownRange {
        /// Configured minimum multiplier.
        min: f64,
        /// Configured maximum multiplier.
        max: f64,
    },
    /// The straggler Pareto shape was non-positive or non-finite.
    InvalidAlpha {
        /// The offending shape parameter.
        alpha: f64,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::NegativeRate { rate } => {
                write!(f, "fault rate must be finite and >= 0, got {rate}")
            }
            FaultSpecError::InvalidProbability { prob } => {
                write!(f, "warned probability must lie in [0, 1], got {prob}")
            }
            FaultSpecError::NonPositiveDuration { seconds } => {
                write!(f, "fault epoch duration must be > 0 s, got {seconds}")
            }
            FaultSpecError::SlowdownBelowOne { multiplier } => {
                write!(f, "straggler slowdown must be >= 1, got {multiplier}")
            }
            FaultSpecError::InvalidSlowdownRange { min, max } => {
                write!(f, "straggler slowdown range inverted: [{min}, {max}]")
            }
            FaultSpecError::InvalidAlpha { alpha } => {
                write!(f, "straggler Pareto alpha must be > 0, got {alpha}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// The fault condition of one unit at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultState {
    /// No active fault.
    Healthy,
    /// The unit is revoked: it serves nothing until the epoch ends.
    Revoked {
        /// Whether the scheduler was warned in advance (graceful drain).
        warned: bool,
    },
    /// The unit runs slowed by the given multiplier (>= 1).
    Straggling {
        /// Service-time multiplier for the epoch.
        slowdown: f64,
    },
}

impl FaultState {
    /// True unless `Healthy`.
    pub fn is_faulted(&self) -> bool {
        !matches!(self, FaultState::Healthy)
    }

    /// Combines an externally-imposed machine-wide state with a local
    /// per-unit state: revocation dominates (external warned flag wins
    /// when both revoke), straggles compound multiplicatively.
    pub fn combine(external: FaultState, local: FaultState) -> FaultState {
        match (external, local) {
            (FaultState::Revoked { warned }, _) | (_, FaultState::Revoked { warned }) => {
                FaultState::Revoked { warned }
            }
            (FaultState::Straggling { slowdown: a }, FaultState::Straggling { slowdown: b }) => {
                FaultState::Straggling { slowdown: a * b }
            }
            (FaultState::Straggling { slowdown }, _) | (_, FaultState::Straggling { slowdown }) => {
                FaultState::Straggling { slowdown }
            }
            (FaultState::Healthy, FaultState::Healthy) => FaultState::Healthy,
        }
    }
}

/// SplitMix64-style per-unit seed derivation, so unit `i`'s timeline
/// never depends on how many units exist or which are queried.
fn unit_seed(base: u64, unit: u64) -> u64 {
    let mut z = base ^ unit.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One fault family's lazily-advanced episode window for one unit.
#[derive(Debug, Clone)]
struct Episode {
    rng: SimRng,
    start: f64,
    end: f64,
    /// Warned flag (revocations) — unused for stragglers.
    warned: bool,
    /// Slowdown multiplier (stragglers) — unused for revocations.
    slowdown: f64,
}

/// A spec expanded into independent per-unit fault timelines.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    revocations: Vec<Episode>,
    stragglers: Vec<Episode>,
    rev_gap: Option<Exponential>,
    str_gap: Option<Exponential>,
    str_mult: Option<BoundedPareto>,
}

impl FaultPlan {
    /// Expands `spec` into `units` independent timelines. `base_seed`
    /// should come from a dedicated split of the run seed so fault
    /// randomness never perturbs demand/arrival/jitter streams.
    ///
    /// # Panics
    /// Panics if the spec does not [`FaultSpec::validate`] — validate at
    /// the scenario/cluster boundary first.
    pub fn new(spec: FaultSpec, base_seed: u64, units: usize) -> Self {
        spec.validate().expect("FaultPlan::new: invalid FaultSpec");
        let rev_gap = (spec.revocation_rate_per_s > 0.0)
            .then(|| Exponential::new(spec.revocation_rate_per_s));
        let str_gap =
            (spec.straggler_rate_per_s > 0.0).then(|| Exponential::new(spec.straggler_rate_per_s));
        let str_mult = (spec.straggler_rate_per_s > 0.0 && spec.straggler_max > spec.straggler_min)
            .then(|| {
                BoundedPareto::new(spec.straggler_min, spec.straggler_max, spec.straggler_alpha)
            });
        let mut plan = FaultPlan {
            spec,
            revocations: Vec::with_capacity(units),
            stragglers: Vec::with_capacity(units),
            rev_gap,
            str_gap,
            str_mult,
        };
        for unit in 0..units as u64 {
            let seed = unit_seed(base_seed, unit);
            let mut rev = Episode {
                rng: SimRng::seed(unit_seed(seed, 0x5245_564f)), // "REVO"
                start: f64::INFINITY,
                end: f64::INFINITY,
                warned: false,
                slowdown: 1.0,
            };
            let mut str_ep = Episode {
                rng: SimRng::seed(unit_seed(seed, 0x5354_5247)), // "STRG"
                start: f64::INFINITY,
                end: f64::INFINITY,
                warned: false,
                slowdown: 1.0,
            };
            plan.schedule_revocation(&mut rev, 0.0);
            plan.schedule_straggle(&mut str_ep, 0.0);
            plan.revocations.push(rev);
            plan.stragglers.push(str_ep);
        }
        plan
    }

    /// Number of units this plan covers.
    pub fn units(&self) -> usize {
        self.revocations.len()
    }

    fn schedule_revocation(&self, ep: &mut Episode, from: f64) {
        if let Some(gap) = &self.rev_gap {
            ep.start = from + gap.sample(&mut ep.rng);
            ep.end = ep.start + self.spec.revocation_duration_s;
            ep.warned = ep.rng.chance(self.spec.warned_prob);
        }
    }

    fn schedule_straggle(&self, ep: &mut Episode, from: f64) {
        if let Some(gap) = &self.str_gap {
            ep.start = from + gap.sample(&mut ep.rng);
            ep.end = ep.start + self.spec.straggler_duration_s;
            ep.slowdown = match &self.str_mult {
                Some(pareto) => pareto.sample(&mut ep.rng),
                None => self.spec.straggler_min,
            };
        }
    }

    /// The fault state of `unit` at time `t`. Queries must be
    /// time-monotonic per unit (interval starts are). Revocation wins
    /// when both families overlap.
    pub fn state(&mut self, unit: usize, t: f64) -> FaultState {
        // Advance each family's window past expired episodes. The
        // episodes are taken out of `self` so the scheduling helpers can
        // borrow the plan immutably.
        let mut rev = std::mem::replace(&mut self.revocations[unit], Episode::placeholder());
        while t >= rev.end {
            let end = rev.end;
            self.schedule_revocation(&mut rev, end);
        }
        let revoked = t >= rev.start;
        let warned = rev.warned;
        self.revocations[unit] = rev;

        let mut st = std::mem::replace(&mut self.stragglers[unit], Episode::placeholder());
        while t >= st.end {
            let end = st.end;
            self.schedule_straggle(&mut st, end);
        }
        let straggling = t >= st.start;
        let slowdown = st.slowdown;
        self.stragglers[unit] = st;

        if revoked {
            FaultState::Revoked { warned }
        } else if straggling {
            FaultState::Straggling { slowdown }
        } else {
            FaultState::Healthy
        }
    }
}

impl Episode {
    fn placeholder() -> Self {
        Episode {
            rng: SimRng::seed(0),
            start: f64::INFINITY,
            end: f64::INFINITY,
            warned: false,
            slowdown: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty() -> FaultSpec {
        FaultSpec::none()
            .with_revocations(0.2, 1.5)
            .with_warned(0.5)
            .with_stragglers(0.3, 2.0, 1.5, 2.0, 8.0)
    }

    #[test]
    fn none_is_none_and_validates() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        assert_eq!(spec.validate(), Ok(()));
        assert!(!faulty().is_none());
        assert_eq!(faulty().validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let bad_rate = FaultSpec::none().with_revocations(-1.0, 1.0);
        assert!(matches!(
            bad_rate.validate(),
            Err(FaultSpecError::NegativeRate { .. })
        ));
        let bad_prob = faulty().with_warned(1.5);
        assert!(matches!(
            bad_prob.validate(),
            Err(FaultSpecError::InvalidProbability { prob }) if prob == 1.5
        ));
        let bad_dur = FaultSpec::none().with_revocations(0.1, 0.0);
        assert!(matches!(
            bad_dur.validate(),
            Err(FaultSpecError::NonPositiveDuration { .. })
        ));
        let slow = FaultSpec::none().with_stragglers(0.1, 1.0, 1.5, 0.5, 8.0);
        assert!(matches!(
            slow.validate(),
            Err(FaultSpecError::SlowdownBelowOne { .. })
        ));
        let inverted = FaultSpec::none().with_stragglers(0.1, 1.0, 1.5, 4.0, 2.0);
        assert!(matches!(
            inverted.validate(),
            Err(FaultSpecError::InvalidSlowdownRange { .. })
        ));
        let alpha = FaultSpec::none().with_stragglers(0.1, 1.0, 0.0, 2.0, 8.0);
        assert!(matches!(
            alpha.validate(),
            Err(FaultSpecError::InvalidAlpha { .. })
        ));
    }

    #[test]
    fn timelines_are_reproducible_and_unit_independent() {
        // The same unit produces the same state sequence regardless of
        // how many other units the plan holds or whether they're queried.
        let mut wide = FaultPlan::new(faulty(), 99, 16);
        let mut narrow = FaultPlan::new(faulty(), 99, 4);
        for step in 0..400 {
            let t = step as f64 * 0.25;
            // Query wide's units in reverse to shuffle cross-unit order.
            let w3 = wide.state(3, t);
            let w0 = wide.state(0, t);
            assert_eq!(narrow.state(0, t), w0, "unit 0 diverged at t={t}");
            assert_eq!(narrow.state(3, t), w3, "unit 3 diverged at t={t}");
        }
    }

    #[test]
    fn episodes_actually_fire_with_sane_parameters() {
        let mut plan = FaultPlan::new(faulty(), 7, 8);
        let (mut revoked, mut straggling) = (0u32, 0u32);
        for step in 0..2000 {
            let t = step as f64 * 0.1;
            for unit in 0..8 {
                match plan.state(unit, t) {
                    FaultState::Revoked { .. } => revoked += 1,
                    FaultState::Straggling { slowdown } => {
                        assert!((2.0..=8.0).contains(&slowdown), "slowdown {slowdown}");
                        straggling += 1;
                    }
                    FaultState::Healthy => {}
                }
            }
        }
        assert!(revoked > 100, "revocations too rare: {revoked}");
        assert!(straggling > 100, "stragglers too rare: {straggling}");
    }

    #[test]
    fn degenerate_slowdown_range_uses_constant_multiplier() {
        let spec = FaultSpec::none().with_stragglers(5.0, 1.0, 1.5, 3.0, 3.0);
        assert_eq!(spec.validate(), Ok(()));
        let mut plan = FaultPlan::new(spec, 1, 2);
        let mut seen = false;
        for step in 0..200 {
            if let FaultState::Straggling { slowdown } = plan.state(0, step as f64 * 0.1) {
                assert_eq!(slowdown, 3.0);
                seen = true;
            }
        }
        assert!(seen, "no straggler episode fired");
    }
}
