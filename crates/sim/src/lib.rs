//! Discrete-event simulator for the Hipster (HPCA 2017) reproduction.
//!
//! The paper's evaluation runs Memcached and Web-Search behind a Faban load
//! generator on real hardware. This crate substitutes a discrete-event
//! queueing simulation that reproduces the *observable* behaviour the
//! Hipster runtime reacts to:
//!
//! * [`ServiceNode`] — a FIFO queue feeding heterogeneous core-servers,
//!   with per-request latencies, two-phase (compute + memory) service,
//!   migration/DVFS transition stalls and cold-cache penalties;
//! * [`Engine`] — steps one monitoring interval at a time under a
//!   [`MachineConfig`], measuring tail latency, power, energy and batch
//!   IPS exactly as the paper's QoS Monitor would;
//! * [`LcModel`] / [`LoadPattern`] / [`BatchProgram`] — the traits the
//!   `hipster-workloads` crate implements for Memcached, Web-Search, the
//!   diurnal load and SPEC CPU2006 programs;
//! * [`Trace`] — recorded runs plus the paper's summary metrics (QoS
//!   guarantee, tardiness, energy, migrations);
//! * deterministic RNG ([`SimRng`]) and distributions ([`dist`]).
//!
//! # Example: one interval on two big cores
//!
//! ```
//! use hipster_platform::{CoreConfig, CoreKind, Frequency, Platform};
//! use hipster_sim::{Demand, Engine, LcModel, LoadPattern, MachineConfig, QosTarget, SimRng};
//!
//! #[derive(Debug)]
//! struct Toy;
//! impl LcModel for Toy {
//!     fn name(&self) -> &str { "toy" }
//!     fn max_load_rps(&self) -> f64 { 100.0 }
//!     fn qos(&self) -> QosTarget { QosTarget::new(0.95, 0.010) }
//!     fn sample_demand(&self, _rng: &mut SimRng) -> Demand { Demand::new(1.0, 0.0) }
//!     fn service_speed(&self, kind: CoreKind, _f: Frequency) -> f64 {
//!         match kind { CoreKind::Big => 1000.0, CoreKind::Small => 400.0 }
//!     }
//! }
//!
//! #[derive(Debug)]
//! struct Half;
//! impl LoadPattern for Half {
//!     fn load_at(&self, _t: f64) -> f64 { 0.5 }
//!     fn duration(&self) -> f64 { 10.0 }
//! }
//!
//! let platform = Platform::juno_r1();
//! let lc: CoreConfig = "2B-1.15".parse()?;
//! let cfg = MachineConfig::interactive(&platform, lc);
//! let mut engine = Engine::new(platform, Box::new(Toy), Box::new(Half), 42);
//! let stats = engine.step(cfg);
//! assert!(stats.completions > 0);
//! # Ok::<(), hipster_platform::PlatformError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod reference;

mod calendar;
mod completion;
mod config;
mod costs;
mod engine;
mod fault;
mod freelist;
mod jsonl;
mod latency;
mod nodemap;
mod ordf64;
mod request;
mod rng;
mod service;
mod think;
mod topology;
mod trace;
mod traits;

pub use calendar::CalendarQueue;
pub use completion::CompletionQueue;
pub use config::{EngineSpec, EngineSpecError};
pub use costs::{ContentionModel, ReconfigCosts};
pub use engine::{Engine, IntervalStats, MachineConfig, DEFAULT_JITTER_SIGMA};
pub use fault::{
    DomainFaultSpec, FaultPlan, FaultSpec, FaultSpecError, FaultState, HedgeSpec, WavePlan,
};
pub use jsonl::{interval_from_jsonl, interval_to_jsonl};
pub use latency::{percentile, LatencyRecorder, P2Quantile};
pub use nodemap::NodeOccupancyMap;
pub use request::{Demand, QosTarget, Request, RequestId};
pub use rng::{Sampler, SimRng};
pub use service::{NodeInterval, QueuedNode, ServerSpec, ServiceNode};
pub use think::ThinkPool;
pub use topology::{TopologyError, TopologySpec};
pub use trace::{csv_header, csv_row, Trace};
pub use traits::{BatchProgram, ClosedLoop, LcModel, LoadPattern};
