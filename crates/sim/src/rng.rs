//! Deterministic, splittable random number generation.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`]
//! seeded explicitly, so whole experiments are bit-reproducible. Independent
//! streams (arrivals, service demands, policy exploration, …) are derived
//! with [`SimRng::fork`], which decorrelates them without sharing state.

/// Deterministic RNG for the simulator.
///
/// Internally an xoshiro256++ generator whose state is expanded from the
/// 64-bit seed with SplitMix64 (the initialisation the xoshiro authors
/// recommend), so the crate needs no external RNG dependency and the
/// stream is stable across platforms and toolchain versions.
///
/// # Examples
///
/// ```
/// use hipster_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's later draws.
/// let mut parent = SimRng::seed(7);
/// let mut child = parent.fork("arrivals");
/// let x = child.uniform();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child's seed mixes the parent's next output with a hash of the
    /// label, so forks with different labels diverge even when taken from
    /// identical parent states.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::seed(self.next_u64() ^ h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [a, b, c, d] = self.state;
        let out = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
        let t = b << 17;
        let mut s = [a, b, c, d];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        out
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw from empty range");
        // Lemire-style widening multiply, without the rejection step: the
        // residual bias is O(n / 2^64), negligible for the small `n` the
        // simulator draws (add rejection before using this for large n).
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0,1]");
        self.uniform() < p
    }
}

/// A sampleable distribution over `f64`.
///
/// Implemented by the distributions in [`crate::dist`]; workload models use
/// trait objects of this to describe service demands.
pub trait Sampler: std::fmt::Debug + Send {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_with_different_labels_diverge() {
        let mut p1 = SimRng::seed(9);
        let mut p2 = SimRng::seed(9);
        let mut a = p1.fork("arrivals");
        let mut b = p2.fork("service");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_reproducible() {
        let mut p1 = SimRng::seed(9);
        let mut p2 = SimRng::seed(9);
        let mut a = p1.fork("x");
        let mut b = p2.fork("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let x = r.uniform_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_in_rejects_empty() {
        SimRng::seed(0).uniform_in(1.0, 1.0);
    }
}
