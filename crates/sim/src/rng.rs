//! Deterministic, splittable random number generation.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`]
//! seeded explicitly, so whole experiments are bit-reproducible. Independent
//! streams (arrivals, service demands, policy exploration, …) are derived
//! with [`SimRng::fork`], which decorrelates them without sharing state.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG for the simulator.
///
/// # Examples
///
/// ```
/// use hipster_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's later draws.
/// let mut parent = SimRng::seed(7);
/// let mut child = parent.fork("arrivals");
/// let x = child.uniform();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child's seed mixes the parent's next output with a hash of the
    /// label, so forks with different labels diverge even when taken from
    /// identical parent states.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::seed(self.inner.next_u64() ^ h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw from empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0,1]");
        self.uniform() < p
    }
}

/// A sampleable distribution over `f64`.
///
/// Implemented by the distributions in [`crate::dist`]; workload models use
/// trait objects of this to describe service demands.
pub trait Sampler: std::fmt::Debug + Send {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_with_different_labels_diverge() {
        let mut p1 = SimRng::seed(9);
        let mut p2 = SimRng::seed(9);
        let mut a = p1.fork("arrivals");
        let mut b = p2.fork("service");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forks_are_reproducible() {
        let mut p1 = SimRng::seed(9);
        let mut p2 = SimRng::seed(9);
        let mut a = p1.fork("x");
        let mut b = p2.fork("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let x = r.uniform_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_in_rejects_empty() {
        SimRng::seed(0).uniform_in(1.0, 1.0);
    }
}
