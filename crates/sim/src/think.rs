//! Closed-loop client thinking pool.
//!
//! A closed-loop load generator keeps a population of emulated clients in a
//! submit → wait → think cycle. Between a response and the next request each
//! client "thinks"; the pool holds the absolute expiry times of all clients
//! currently thinking. The engine needs three operations per event or
//! interval boundary:
//!
//! * `peek_min` / `pop_min` — who submits next (every think-expiry event);
//! * `push` — a responding client starts thinking (every completion);
//! * `retire_latest(k)` — at interval boundaries, shrink the population by
//!   retiring the clients that would submit last.
//!
//! The pre-PR3 engine used a plain `Vec` with an O(n) scan for each of
//! these; at 4096 clients that scan dominated the whole simulation. This
//! pool is a binary min-heap: O(log n) push/pop, O(1) peek, and
//! `retire_latest` uses one O(n) selection per interval boundary instead of
//! k O(n) scans.
//!
//! Clients are indistinguishable — the pool is a multiset of expiry times —
//! so replacing scan-based extraction with a heap leaves simulation traces
//! bit-identical: ties between equal expiries remove *a* client with that
//! expiry either way, and the surviving multiset (all future behaviour
//! depends only on it) is the same.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::ordf64::TotalF64;

/// Min-heap of closed-loop client think-timer expiry times (seconds,
/// absolute simulation time): O(log n) push/pop-min, O(1) peek, and
/// one selection pass (not k max-scans) to retire the k latest clients.
/// The pool is a multiset — clients are indistinguishable — so it
/// reproduces the pre-PR3 scan-based `Vec` pool bit-identically.
#[derive(Debug, Clone, Default)]
pub struct ThinkPool {
    heap: BinaryHeap<Reverse<TotalF64>>,
}

impl ThinkPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients currently thinking.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no client is thinking.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Adds a client whose think timer expires at `expiry` (O(log n)).
    pub fn push(&mut self, expiry: f64) {
        self.heap.push(Reverse(TotalF64(expiry)));
    }

    /// Earliest think expiry (O(1)).
    pub fn peek_min(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(TotalF64(x))| *x)
    }

    /// Removes and returns the earliest expiry (O(log n)).
    pub fn pop_min(&mut self) -> Option<f64> {
        self.heap.pop().map(|Reverse(TotalF64(x))| x)
    }

    /// Retires the `k` clients that would submit last (the largest
    /// expiries). One O(n) selection pass — not k max-scans.
    pub fn retire_latest(&mut self, k: usize) {
        if k == 0 {
            return;
        }
        if k >= self.heap.len() {
            self.heap.clear();
            return;
        }
        let mut v = std::mem::take(&mut self.heap).into_vec();
        // `Reverse` inverts the order, so the k *largest* expiries are the k
        // *smallest* `Reverse` elements: partition them to the front, drop
        // them, and re-heapify the survivors (O(n)).
        v.select_nth_unstable(k - 1);
        v.drain(..k);
        self.heap = BinaryHeap::from(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_order() {
        let mut p = ThinkPool::new();
        for x in [3.0, 1.0, 4.0, 1.5, 9.0, 2.6] {
            p.push(x);
        }
        assert_eq!(p.len(), 6);
        assert_eq!(p.peek_min(), Some(1.0));
        let mut got = Vec::new();
        while let Some(x) = p.pop_min() {
            got.push(x);
        }
        assert_eq!(got, vec![1.0, 1.5, 2.6, 3.0, 4.0, 9.0]);
        assert!(p.is_empty());
    }

    #[test]
    fn retire_latest_removes_largest() {
        let mut p = ThinkPool::new();
        for x in [5.0, 2.0, 8.0, 1.0, 9.0, 3.0] {
            p.push(x);
        }
        p.retire_latest(2); // drops 8.0 and 9.0
        let mut got = Vec::new();
        while let Some(x) = p.pop_min() {
            got.push(x);
        }
        assert_eq!(got, vec![1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn retire_latest_edge_cases() {
        let mut p = ThinkPool::new();
        p.retire_latest(3); // empty pool: no-op
        assert!(p.is_empty());
        p.push(1.0);
        p.push(2.0);
        p.retire_latest(0); // k = 0: no-op
        assert_eq!(p.len(), 2);
        p.retire_latest(5); // k ≥ len: clears
        assert!(p.is_empty());
    }

    #[test]
    fn duplicate_expiries_are_a_multiset() {
        let mut p = ThinkPool::new();
        for x in [2.0, 2.0, 2.0, 1.0] {
            p.push(x);
        }
        p.retire_latest(2);
        assert_eq!(p.pop_min(), Some(1.0));
        assert_eq!(p.pop_min(), Some(2.0));
        assert_eq!(p.pop_min(), None);
    }
}
