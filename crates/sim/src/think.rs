//! Closed-loop client thinking pool.
//!
//! A closed-loop load generator keeps a population of emulated clients in a
//! submit → wait → think cycle. Between a response and the next request each
//! client "thinks"; the pool holds the absolute expiry times of all clients
//! currently thinking. The engine needs three operations per event or
//! interval boundary:
//!
//! * `peek_min` / `pop_min` — who submits next (every think-expiry event);
//! * `push` — a responding client starts thinking (every completion);
//! * `retire_latest(k)` — at interval boundaries, shrink the population by
//!   retiring the clients that would submit last.
//!
//! The pre-PR3 engine used a plain `Vec` with an O(n) scan for each of
//! these; PR 3 replaced it with a binary min-heap (O(log n) push/pop —
//! frozen as [`HeapThinkPool`](crate::reference::HeapThinkPool)). Since
//! PR 6 the pool is a calendar queue — the key-only `TimerCalendar`
//! instantiation: clients are indistinguishable, so each entry is a bare
//! `u64` time key (half the size of the completion calendar's packed
//! pairs). At 4096 thinking clients the heap's pop walked ~12
//! cache-hostile levels per event, while the calendar's time buckets make
//! push and pop-min O(1) amortized — think expiries are `now +
//! Exp(think)` draws, spread over a few mean think times, exactly the
//! regime the queue's width tracks. `retire_latest` stays one O(n)
//! selection per interval boundary.
//!
//! Clients are indistinguishable — the pool is a multiset of expiry times
//! ordered by [`f64::total_cmp`] — so the calendar pool reproduces both
//! frozen pools bit-identically: ties between equal expiries remove *a*
//! client with that expiry either way, and the surviving multiset (all
//! future behaviour depends only on it) is the same (differential
//! battery: `tests/calendar_equivalence.rs`).

use crate::calendar::TimerCalendar;

/// Calendar-queue pool of closed-loop client think-timer expiry times
/// (seconds, absolute simulation time): O(1) amortized push/pop-min, O(1)
/// peek, and one selection pass (not k max-scans) to retire the k latest
/// clients. The pool is a multiset — clients are indistinguishable — so it
/// reproduces the frozen heap and scan pools bit-identically.
#[derive(Debug, Clone, Default)]
pub struct ThinkPool {
    queue: TimerCalendar,
    /// Reused selection buffer for [`ThinkPool::retire_latest`].
    scratch: Vec<f64>,
}

impl ThinkPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients currently thinking.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no client is thinking.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Adds a client whose think timer expires at `expiry` (O(1)
    /// amortized).
    pub fn push(&mut self, expiry: f64) {
        self.queue.push(expiry);
    }

    /// Earliest think expiry (O(1)).
    pub fn peek_min(&self) -> Option<f64> {
        self.queue.peek_min_time()
    }

    /// Removes and returns the earliest expiry (O(1) amortized).
    pub fn pop_min(&mut self) -> Option<f64> {
        self.queue.pop_if_le(f64::INFINITY)
    }

    /// Retires the `k` clients that would submit last (the largest
    /// expiries). One O(n) selection pass — not k max-scans.
    pub fn retire_latest(&mut self, k: usize) {
        if k == 0 {
            return;
        }
        if k >= self.queue.len() {
            self.queue.clear();
            return;
        }
        let mut v = std::mem::take(&mut self.scratch);
        self.queue.drain_times(&mut v);
        // Partition the k largest expiries to the tail and drop them (the
        // pivot at `keep` is the smallest of the k), then rebuild the
        // calendar from the survivors (O(n)).
        let keep = v.len() - k;
        v.select_nth_unstable_by(keep, |a, b| a.total_cmp(b));
        v.truncate(keep);
        self.queue.rebuild_from_times(&mut v);
        self.scratch = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_order() {
        let mut p = ThinkPool::new();
        for x in [3.0, 1.0, 4.0, 1.5, 9.0, 2.6] {
            p.push(x);
        }
        assert_eq!(p.len(), 6);
        assert_eq!(p.peek_min(), Some(1.0));
        let mut got = Vec::new();
        while let Some(x) = p.pop_min() {
            got.push(x);
        }
        assert_eq!(got, vec![1.0, 1.5, 2.6, 3.0, 4.0, 9.0]);
        assert!(p.is_empty());
    }

    #[test]
    fn retire_latest_removes_largest() {
        let mut p = ThinkPool::new();
        for x in [5.0, 2.0, 8.0, 1.0, 9.0, 3.0] {
            p.push(x);
        }
        p.retire_latest(2); // drops 8.0 and 9.0
        let mut got = Vec::new();
        while let Some(x) = p.pop_min() {
            got.push(x);
        }
        assert_eq!(got, vec![1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn retire_latest_edge_cases() {
        let mut p = ThinkPool::new();
        p.retire_latest(3); // empty pool: no-op
        assert!(p.is_empty());
        p.push(1.0);
        p.push(2.0);
        p.retire_latest(0); // k = 0: no-op
        assert_eq!(p.len(), 2);
        p.retire_latest(5); // k ≥ len: clears
        assert!(p.is_empty());
    }

    #[test]
    fn duplicate_expiries_are_a_multiset() {
        let mut p = ThinkPool::new();
        for x in [2.0, 2.0, 2.0, 1.0] {
            p.push(x);
        }
        p.retire_latest(2);
        assert_eq!(p.pop_min(), Some(1.0));
        assert_eq!(p.pop_min(), Some(2.0));
        assert_eq!(p.pop_min(), None);
    }
}
