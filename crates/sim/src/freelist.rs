//! Speed-class bitmap free lists for the service node's dispatch path.
//!
//! Hipster's action space (big/small core mixes × a few DVFS steps) yields
//! only a handful of *distinct effective speeds*, so ordering free servers
//! in a max-heap mostly compares equal keys. [`SpeedClassFreeList`] exploits
//! that: a small table of distinct effective speeds, sorted fastest-first
//! and rebuilt only when a reconfiguration actually changes the per-server
//! speed sequence, where each class holds a **two-level u64 bitset** over
//! its member servers. Dispatch is "first non-empty class, find set bit" —
//! O(1) in the server count — and promoting stalled servers whose
//! reconfiguration stall elapsed is a word-wise bitmap merge.
//!
//! Tie-breaking replicates the free-server max-heap it replaced exactly:
//! the fastest class wins, and within a class the *highest* server index
//! wins (members are stored in ascending index order, so the leading set
//! bit of the highest non-zero word is the highest index).

/// Where one server lives in the class table: its class index and its rank
/// (bit position) within that class's bitmaps.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    class: u32,
    rank: u32,
}

/// One distinct effective speed and the free/stalled bitmaps over the
/// servers running at that speed.
#[derive(Debug, Clone, Default)]
struct SpeedClass {
    /// Effective speed (`speed / slowdown`) shared by all members.
    eff: f64,
    /// Member server indices, ascending (rank → server index).
    members: Vec<u32>,
    /// Free bitmap over ranks (leaf level).
    free: Vec<u64>,
    /// Occupancy of `free`'s words (summary level): bit `w` set when
    /// `free[w] != 0`.
    free_summary: Vec<u64>,
    /// Stalled bitmap over ranks (servers parked until their
    /// reconfiguration stall elapses).
    stalled: Vec<u64>,
    /// Number of set bits in `free` (drives the class-occupancy bit).
    free_count: usize,
}

/// Free-server index bucketed by effective speed, bitmap-backed.
///
/// Replaces the `BinaryHeap<(eff, server)>` + stalled `Vec` pair of the
/// PR 3/4-era node (frozen as [`crate::reference::HeapNode`]):
///
/// * [`pop_best`](SpeedClassFreeList::pop_best) — fastest free server,
///   ties toward the highest index — is O(1): find-first-set over the
///   class-occupancy words, then leading-bit selection in the winning
///   class's two-level bitset.
/// * [`mark_free`](SpeedClassFreeList::mark_free) /
///   [`mark_stalled`](SpeedClassFreeList::mark_stalled) are O(1) bit sets.
/// * [`promote`](SpeedClassFreeList::promote) merges every stalled server
///   into the free bitmaps word-wise when the latest stall has elapsed
///   (the common case — one reconfiguration stalls all idle servers until
///   the same instant), falling back to a per-bit eligibility check only
///   while inside a stall window.
/// * [`rebuild`](SpeedClassFreeList::rebuild) re-derives the class table
///   only when the per-server effective-speed sequence actually changed;
///   otherwise it just clears the bitmaps (a few word fills).
#[derive(Debug, Clone, Default)]
pub(crate) struct SpeedClassFreeList {
    /// Distinct effective speeds, fastest first.
    classes: Vec<SpeedClass>,
    /// Bit `c` set when class `c` has at least one free server.
    class_occ: Vec<u64>,
    /// Per-server (class, rank) lookup.
    slot: Vec<Slot>,
    /// Per-server effective-speed bit patterns of the current table, for
    /// change detection in [`rebuild`](SpeedClassFreeList::rebuild).
    eff_seq: Vec<u64>,
    /// Scratch for the distinct-speed sort (reused across rebuilds).
    distinct: Vec<f64>,
    /// Total stalled servers across all classes.
    stalled_count: usize,
    /// Latest `available_at` among stalled servers; once `now` passes it,
    /// promotion is a word-wise merge with no per-server checks.
    stalled_max_avail: f64,
}

impl SpeedClassFreeList {
    /// Creates an empty free list (no servers, no classes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the free list for a new server array whose effective speeds
    /// are `effs` (indexed by server). Every server starts neither free nor
    /// stalled; the caller marks each idle server stalled afterwards.
    ///
    /// When the speed sequence is unchanged from the previous rebuild (the
    /// steady-state interval boundary), the class table, membership lists
    /// and slots are kept and only the bitmaps are cleared.
    pub fn rebuild<I>(&mut self, effs: I)
    where
        I: Iterator<Item = f64> + Clone,
    {
        let mut changed = false;
        let mut n = 0usize;
        for (i, e) in effs.clone().enumerate() {
            if self.eff_seq.get(i).copied() != Some(e.to_bits()) {
                changed = true;
            }
            n += 1;
        }
        changed |= n != self.eff_seq.len();

        if changed {
            self.rebuild_classes(effs, n);
        } else {
            for cls in &mut self.classes {
                cls.free.fill(0);
                cls.free_summary.fill(0);
                cls.stalled.fill(0);
                cls.free_count = 0;
            }
            self.class_occ.fill(0);
        }
        self.stalled_count = 0;
        self.stalled_max_avail = f64::NEG_INFINITY;
    }

    /// Full class-table rebuild: sort + dedup the distinct speeds, assign
    /// every server a (class, rank) slot, size the bitmaps. O(n log C).
    fn rebuild_classes<I>(&mut self, effs: I, n: usize)
    where
        I: Iterator<Item = f64> + Clone,
    {
        self.eff_seq.clear();
        self.eff_seq.extend(effs.clone().map(f64::to_bits));

        self.distinct.clear();
        self.distinct.extend(effs.clone());
        // Fastest first; equal speeds share one bit pattern (speeds are
        // positive finite quotients), so bit-equality dedup is exact.
        self.distinct.sort_by(|a, b| b.total_cmp(a));
        self.distinct.dedup_by(|a, b| a.to_bits() == b.to_bits());

        // Reuse existing class entries (and their bitmap capacity).
        while self.classes.len() < self.distinct.len() {
            self.classes.push(SpeedClass::default());
        }
        self.classes.truncate(self.distinct.len());
        for (cls, &eff) in self.classes.iter_mut().zip(&self.distinct) {
            cls.eff = eff;
            cls.members.clear();
            cls.free_count = 0;
        }

        self.slot.clear();
        self.slot.resize(n, Slot::default());
        for (i, e) in effs.enumerate() {
            let c = self
                .distinct
                .binary_search_by(|probe| e.total_cmp(probe))
                .expect("every server speed is in the distinct table");
            let cls = &mut self.classes[c];
            self.slot[i] = Slot {
                class: c as u32,
                rank: cls.members.len() as u32,
            };
            cls.members.push(i as u32);
        }

        for cls in &mut self.classes {
            let words = cls.members.len().div_ceil(64);
            let summary_words = words.div_ceil(64).max(1);
            cls.free.clear();
            cls.free.resize(words, 0);
            cls.free_summary.clear();
            cls.free_summary.resize(summary_words, 0);
            cls.stalled.clear();
            cls.stalled.resize(words, 0);
        }
        self.class_occ.clear();
        self.class_occ
            .resize(self.classes.len().div_ceil(64).max(1), 0);
    }

    /// Number of distinct speed classes in the current table.
    #[cfg(test)]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Whether any server is parked in a stall window.
    #[inline]
    pub fn has_stalled(&self) -> bool {
        self.stalled_count != 0
    }

    /// Marks `server` free and eligible for dispatch. O(1).
    ///
    /// The caller guarantees the server is currently neither free nor
    /// stalled.
    #[inline]
    pub fn mark_free(&mut self, server: usize) {
        let Slot { class, rank } = self.slot[server];
        let (c, r) = (class as usize, rank as usize);
        let cls = &mut self.classes[c];
        cls.free[r / 64] |= 1u64 << (r % 64);
        cls.free_summary[r / 64 / 64] |= 1u64 << (r / 64 % 64);
        cls.free_count += 1;
        self.class_occ[c / 64] |= 1u64 << (c % 64);
    }

    /// Parks `server` (idle, but inside a reconfiguration stall until
    /// `available_at`). O(1).
    ///
    /// The caller guarantees the server is currently neither free nor
    /// stalled.
    #[inline]
    pub fn mark_stalled(&mut self, server: usize, available_at: f64) {
        let Slot { class, rank } = self.slot[server];
        let (c, r) = (class as usize, rank as usize);
        self.classes[c].stalled[r / 64] |= 1u64 << (r % 64);
        self.stalled_count += 1;
        if available_at > self.stalled_max_avail {
            self.stalled_max_avail = available_at;
        }
    }

    /// Removes and returns the preferred free server: fastest class, ties
    /// toward the highest server index. O(1): find-first-set over the
    /// class-occupancy words, then leading-bit selection within the class.
    #[inline]
    pub fn pop_best(&mut self) -> Option<usize> {
        let mut c = None;
        for (wi, &w) in self.class_occ.iter().enumerate() {
            if w != 0 {
                c = Some(wi * 64 + w.trailing_zeros() as usize);
                break;
            }
        }
        let c = c?;
        let cls = &mut self.classes[c];
        let swi = cls
            .free_summary
            .iter()
            .rposition(|&w| w != 0)
            .expect("occupied class has a summary bit");
        let wi = swi * 64 + (63 - cls.free_summary[swi].leading_zeros() as usize);
        let r = wi * 64 + (63 - cls.free[wi].leading_zeros() as usize);
        cls.free[wi] &= !(1u64 << (r % 64));
        if cls.free[wi] == 0 {
            cls.free_summary[swi] &= !(1u64 << (wi % 64));
        }
        cls.free_count -= 1;
        if cls.free_count == 0 {
            self.class_occ[c / 64] &= !(1u64 << (c % 64));
        }
        Some(cls.members[r] as usize)
    }

    /// Promotes stalled servers whose stall has elapsed at `now` into the
    /// free bitmaps. When `now` has passed the *latest* stall deadline —
    /// the common case, since one reconfiguration stalls every idle server
    /// until the same instant — this is a word-wise `free |= stalled` merge
    /// with no per-server work. Inside a stall window it falls back to a
    /// per-bit check of `avail_of(server)`.
    pub fn promote(&mut self, now: f64, avail_of: impl Fn(usize) -> f64) {
        if self.stalled_count == 0 {
            return;
        }
        let merge_all = now >= self.stalled_max_avail;
        for (c, cls) in self.classes.iter_mut().enumerate() {
            let mut gained = 0usize;
            for w in 0..cls.stalled.len() {
                let mut st = cls.stalled[w];
                if st == 0 {
                    continue;
                }
                if merge_all {
                    cls.free[w] |= st;
                    cls.free_summary[w / 64] |= 1u64 << (w % 64);
                    gained += st.count_ones() as usize;
                    cls.stalled[w] = 0;
                    continue;
                }
                while st != 0 {
                    let b = st.trailing_zeros() as usize;
                    st &= st - 1;
                    let server = cls.members[w * 64 + b] as usize;
                    if avail_of(server) <= now {
                        cls.stalled[w] &= !(1u64 << b);
                        cls.free[w] |= 1u64 << b;
                        cls.free_summary[w / 64] |= 1u64 << (w % 64);
                        gained += 1;
                        self.stalled_count -= 1;
                    }
                }
            }
            if gained > 0 {
                cls.free_count += gained;
                self.class_occ[c / 64] |= 1u64 << (c % 64);
            }
        }
        if merge_all {
            self.stalled_count = 0;
            self.stalled_max_avail = f64::NEG_INFINITY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(effs: &[f64]) -> SpeedClassFreeList {
        let mut fl = SpeedClassFreeList::new();
        fl.rebuild(effs.iter().copied());
        fl
    }

    #[test]
    fn pops_fastest_class_then_highest_index() {
        // Servers 0..6 with speeds: two classes (4.0 fast, 2.0 slow).
        let mut fl = build(&[2.0, 4.0, 2.0, 4.0, 2.0, 4.0]);
        for i in 0..6 {
            fl.mark_free(i);
        }
        // Fast class indices descending, then slow class descending —
        // exactly the (eff, index) max-heap pop order.
        let order: Vec<usize> = std::iter::from_fn(|| fl.pop_best()).collect();
        assert_eq!(order, vec![5, 3, 1, 4, 2, 0]);
        assert_eq!(fl.pop_best(), None);
    }

    #[test]
    fn interleaved_free_and_pop() {
        let mut fl = build(&[1.0, 3.0, 3.0]);
        fl.mark_free(0);
        assert_eq!(fl.pop_best(), Some(0));
        fl.mark_free(1);
        fl.mark_free(0);
        assert_eq!(fl.pop_best(), Some(1), "faster class preferred");
        fl.mark_free(2);
        fl.mark_free(1);
        assert_eq!(fl.pop_best(), Some(2), "highest index wins the tie");
        assert_eq!(fl.pop_best(), Some(1));
        assert_eq!(fl.pop_best(), Some(0));
        assert_eq!(fl.pop_best(), None);
    }

    #[test]
    fn stalled_merge_promotes_word_wise() {
        let mut fl = build(&[2.0; 130]); // one class, 3 leaf words
        for i in 0..130 {
            fl.mark_stalled(i, 5.0);
        }
        assert!(fl.has_stalled());
        assert_eq!(fl.pop_best(), None, "stalled servers are not dispatchable");
        fl.promote(4.0, |_| 5.0);
        assert_eq!(fl.pop_best(), None, "stall not elapsed yet");
        fl.promote(5.0, |_| {
            unreachable!("full merge needs no per-server check")
        });
        assert!(!fl.has_stalled());
        assert_eq!(fl.pop_best(), Some(129));
        assert_eq!(fl.pop_best(), Some(128));
        let rest: Vec<usize> = std::iter::from_fn(|| fl.pop_best()).collect();
        assert_eq!(rest.len(), 128);
        assert_eq!(rest.last(), Some(&0));
    }

    #[test]
    fn partial_promotion_checks_each_server() {
        let mut fl = build(&[2.0, 2.0, 2.0]);
        fl.mark_stalled(0, 1.0);
        fl.mark_stalled(1, 3.0);
        fl.mark_stalled(2, 2.0);
        fl.promote(2.0, |i| [1.0, 3.0, 2.0][i]);
        assert!(fl.has_stalled(), "server 1 still stalled");
        assert_eq!(fl.pop_best(), Some(2));
        assert_eq!(fl.pop_best(), Some(0));
        assert_eq!(fl.pop_best(), None);
        fl.promote(3.0, |_| unreachable!("now past the max deadline"));
        assert_eq!(fl.pop_best(), Some(1));
        assert!(!fl.has_stalled());
    }

    #[test]
    fn rebuild_detects_speed_changes() {
        let mut fl = build(&[1.0, 2.0]);
        assert_eq!(fl.num_classes(), 2);
        // Same sequence: table kept, bitmaps cleared.
        fl.mark_free(0);
        fl.rebuild([1.0, 2.0].into_iter());
        assert_eq!(fl.pop_best(), None, "rebuild clears the free bitmaps");
        // Changed sequence: table rebuilt.
        fl.rebuild([4.0, 4.0].into_iter());
        assert_eq!(fl.num_classes(), 1);
        fl.mark_free(0);
        fl.mark_free(1);
        assert_eq!(fl.pop_best(), Some(1));
        // Count change alone is a change.
        fl.rebuild([4.0, 4.0, 4.0].into_iter());
        assert_eq!(fl.num_classes(), 1);
        fl.mark_free(2);
        assert_eq!(fl.pop_best(), Some(2));
    }

    #[test]
    fn wide_class_table_spans_occupancy_words() {
        // 100 distinct speeds → the class-occupancy bitmap needs 2 words.
        let effs: Vec<f64> = (0..100).map(|i| 1.0 + i as f64).collect();
        let mut fl = build(&effs);
        assert_eq!(fl.num_classes(), 100);
        fl.mark_free(0); // slowest → class 99, second occupancy word
        fl.mark_free(99); // fastest → class 0
        assert_eq!(fl.pop_best(), Some(99));
        assert_eq!(fl.pop_best(), Some(0));
        assert_eq!(fl.pop_best(), None);
    }
}
