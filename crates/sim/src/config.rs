//! Declarative engine construction: an [`EngineSpec`] carries every knob
//! an [`Engine`] accepts, validates itself with typed errors, and builds
//! the engine in one call.
//!
//! Experiment harnesses used to chain `Engine::new(..).with_interval(..)
//! .with_jitter(..)` by hand in every driver; a spec makes the full
//! configuration a value that can be stored, compared, cloned across a
//! fleet of scenarios, and validated *before* anything panics.

use hipster_platform::Platform;

use crate::costs::{ContentionModel, ReconfigCosts};
use crate::engine::{Engine, DEFAULT_JITTER_SIGMA};
use crate::fault::{FaultSpec, FaultSpecError, HedgeSpec};
use crate::traits::{BatchProgram, LcModel, LoadPattern};

/// Why an [`EngineSpec`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineSpecError {
    /// The monitoring interval length is zero, negative or not finite.
    NonPositiveInterval {
        /// The rejected interval length, seconds.
        seconds: f64,
    },
    /// The background-interference jitter sigma is negative or not finite.
    InvalidJitter {
        /// The rejected sigma.
        sigma: f64,
    },
    /// The fault-injection spec is invalid.
    Fault(FaultSpecError),
}

impl std::fmt::Display for EngineSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineSpecError::NonPositiveInterval { seconds } => {
                write!(f, "monitoring interval must be positive, got {seconds}")
            }
            EngineSpecError::InvalidJitter { sigma } => {
                write!(
                    f,
                    "jitter sigma must be finite and non-negative, got {sigma}"
                )
            }
            EngineSpecError::Fault(e) => write!(f, "fault spec: {e}"),
        }
    }
}

impl std::error::Error for EngineSpecError {}

/// Every engine knob as one declarative value (see [`Engine`] for what each
/// field does). [`EngineSpec::default`] reproduces `Engine::new` exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSpec {
    /// Root seed for all stochastic streams.
    pub seed: u64,
    /// Monitoring interval length, seconds (paper default: 1 s).
    pub interval_s: f64,
    /// Lognormal sigma of the background-interference slowdown
    /// ([`DEFAULT_JITTER_SIGMA`] unless overridden; 0 = noiseless).
    pub jitter_sigma: f64,
    /// Core-migration / DVFS transition costs.
    pub costs: ReconfigCosts,
    /// LC-vs-batch contention model.
    pub contention: ContentionModel,
    /// Whether the Juno perf idle-counter bug is armed.
    pub perf_quirk: bool,
    /// Whether Linux `cpuidle` is disabled (the paper's perf-bug
    /// mitigation; idle cores burn more power but counters stay clean).
    pub cpuidle_disabled: bool,
    /// Fault injection: transient revocations and straggler episodes
    /// ([`FaultSpec::none`] = the exact fault-free path).
    pub faults: FaultSpec,
    /// Hedging policy for per-request stragglers ([`HedgeSpec::none`] =
    /// no backups; only meaningful when
    /// [`FaultSpec::with_request_stragglers`] is armed).
    pub hedge: HedgeSpec,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            seed: 0,
            interval_s: 1.0,
            jitter_sigma: DEFAULT_JITTER_SIGMA,
            costs: ReconfigCosts::juno_defaults(),
            contention: ContentionModel::juno_defaults(),
            perf_quirk: false,
            cpuidle_disabled: false,
            faults: FaultSpec::none(),
            hedge: HedgeSpec::none(),
        }
    }
}

impl EngineSpec {
    /// A default spec with the given root seed.
    pub fn seeded(seed: u64) -> Self {
        EngineSpec {
            seed,
            ..EngineSpec::default()
        }
    }

    /// Checks every field, returning the first problem found.
    pub fn validate(&self) -> Result<(), EngineSpecError> {
        if !self.interval_s.is_finite() || self.interval_s <= 0.0 {
            return Err(EngineSpecError::NonPositiveInterval {
                seconds: self.interval_s,
            });
        }
        if !self.jitter_sigma.is_finite() || self.jitter_sigma < 0.0 {
            return Err(EngineSpecError::InvalidJitter {
                sigma: self.jitter_sigma,
            });
        }
        self.faults.validate().map_err(EngineSpecError::Fault)?;
        self.hedge.validate().map_err(EngineSpecError::Fault)?;
        Ok(())
    }

    /// Builds an engine for `platform` running `lc` under `load` with the
    /// given batch pool (pass an empty vector for interactive-only runs).
    ///
    /// Construction is deterministic: a given spec always yields an engine
    /// with identical stochastic streams, so a spec can be replayed on any
    /// thread of a fleet and produce a byte-identical trace.
    pub fn build(
        &self,
        platform: Platform,
        lc: Box<dyn LcModel>,
        load: Box<dyn LoadPattern>,
        batch: Vec<Box<dyn BatchProgram>>,
    ) -> Result<Engine, EngineSpecError> {
        self.validate()?;
        let mut engine = Engine::new(platform, lc, load, self.seed)
            .with_interval(self.interval_s)
            .with_jitter(self.jitter_sigma)
            .with_costs(self.costs)
            .with_contention(self.contention)
            .with_perf_quirk(self.perf_quirk);
        if !self.hedge.is_none() {
            engine = engine.with_hedging(self.hedge);
        }
        if !self.faults.is_none() {
            engine = engine.with_faults(self.faults);
        }
        if !batch.is_empty() {
            engine = engine.with_batch_pool(batch);
        }
        if self.cpuidle_disabled {
            engine.disable_cpuidle();
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Demand, QosTarget};
    use crate::rng::SimRng;
    use hipster_platform::{CoreKind, Frequency};

    #[derive(Debug)]
    struct Toy;
    impl LcModel for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn max_load_rps(&self) -> f64 {
            100.0
        }
        fn qos(&self) -> QosTarget {
            QosTarget::new(0.95, 0.010)
        }
        fn sample_demand(&self, _rng: &mut SimRng) -> Demand {
            Demand::new(1.0, 0.0)
        }
        fn service_speed(&self, kind: CoreKind, _f: Frequency) -> f64 {
            match kind {
                CoreKind::Big => 1000.0,
                CoreKind::Small => 400.0,
            }
        }
    }

    #[derive(Debug)]
    struct Half;
    impl LoadPattern for Half {
        fn load_at(&self, _t: f64) -> f64 {
            0.5
        }
        fn duration(&self) -> f64 {
            10.0
        }
    }

    #[test]
    fn default_spec_matches_engine_new() {
        // Same seed, default knobs: spec-built and hand-built engines must
        // produce identical interval statistics.
        let platform = Platform::juno_r1();
        let lc: hipster_platform::CoreConfig = "2B-1.15".parse().unwrap();
        let cfg = crate::engine::MachineConfig::interactive(&platform, lc);

        let mut by_hand = Engine::new(platform.clone(), Box::new(Toy), Box::new(Half), 42);
        let mut by_spec = EngineSpec::seeded(42)
            .build(platform, Box::new(Toy), Box::new(Half), Vec::new())
            .unwrap();
        for _ in 0..5 {
            assert_eq!(by_hand.step(cfg), by_spec.step(cfg));
        }
    }

    #[test]
    fn rejects_bad_interval_and_jitter() {
        let mut s = EngineSpec::default();
        s.interval_s = 0.0;
        assert_eq!(
            s.validate(),
            Err(EngineSpecError::NonPositiveInterval { seconds: 0.0 })
        );
        let mut s = EngineSpec::default();
        s.jitter_sigma = -1.0;
        assert_eq!(
            s.validate(),
            Err(EngineSpecError::InvalidJitter { sigma: -1.0 })
        );
        let mut s = EngineSpec::default();
        s.interval_s = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_bad_fault_spec() {
        let mut s = EngineSpec::default();
        s.faults = FaultSpec::none()
            .with_warned(2.0)
            .with_revocations(0.1, 1.0);
        assert!(matches!(
            s.validate(),
            Err(EngineSpecError::Fault(FaultSpecError::InvalidProbability { prob })) if prob == 2.0
        ));
    }

    #[test]
    fn error_messages_name_the_offender() {
        let e = EngineSpecError::InvalidJitter { sigma: -0.5 };
        assert!(e.to_string().contains("-0.5"));
    }
}
