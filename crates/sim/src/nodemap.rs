//! A two-level-u64 occupancy bitmap over cluster nodes, so least-loaded
//! dispatch stays O(1) in cluster size.
//!
//! This is the PR 5 speed-class free-list idiom lifted one tier up: where
//! `SpeedClassFreeList` buckets *servers* by speed class, [`NodeOccupancyMap`]
//! buckets *nodes* by integer occupancy (queued work quanta). Each occupancy
//! level keeps a membership bitmap (one bit per node) plus a summary word
//! (one bit per membership word), and a per-level occupancy word marks which
//! levels are non-empty. Picking the least-loaded node is then three
//! constant-time bit scans instead of an O(N) linear scan, and moving a node
//! between levels is two masked stores.
//!
//! Tie-breaks are fixed at the *lowest* node index, which is exactly what a
//! naive left-to-right linear scan with a strict `<` comparison produces —
//! the property the cluster dispatch differential test pins.

/// Occupancy-bucketed node bitmap with O(1) update and min-pick.
///
/// Occupancies saturate at the construction-time `cap`: a node past `cap`
/// stays in the top bucket (and its excess is not tracked), which keeps the
/// structure dense. Pick `cap` comfortably above the per-interval dispatch
/// quota so saturation only occurs under extreme overload, where "which
/// overloaded node" no longer matters.
///
/// # Example
///
/// ```
/// use hipster_sim::NodeOccupancyMap;
///
/// let mut map = NodeOccupancyMap::new(256, 16);
/// map.set(7, 3);
/// map.inc(7);
/// assert_eq!(map.occupancy(7), 4);
/// assert_eq!(map.min_node(), Some(0)); // nodes 0..256 except 7 are empty
/// map.set(7, 0);
/// assert_eq!(map.total(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct NodeOccupancyMap {
    nodes: usize,
    cap: u32,
    /// Clamped occupancy per node.
    occ: Vec<u32>,
    /// One membership level per occupancy value `0..=cap`.
    levels: Vec<Level>,
    /// Bit `c` set when level `c` is non-empty; `(cap + 1).div_ceil(64)`
    /// words (one or two for realistic caps).
    level_occ: Vec<u64>,
    /// Sum of clamped occupancies.
    sum: u64,
}

/// Membership bitmap for one occupancy level.
#[derive(Debug, Clone)]
struct Level {
    /// Bit `n % 64` of word `n / 64` set when node `n` sits at this level.
    words: Vec<u64>,
    /// Bit `w % 64` of word `w / 64` set when `words[w] != 0`.
    summary: Vec<u64>,
}

impl NodeOccupancyMap {
    /// Creates a map of `nodes` nodes, all at occupancy 0, clamping at
    /// `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, cap: u32) -> Self {
        assert!(nodes > 0, "a cluster tier needs at least one node");
        let n_words = nodes.div_ceil(64);
        let s_words = n_words.div_ceil(64);
        let empty = Level {
            words: vec![0; n_words],
            summary: vec![0; s_words],
        };
        let mut zero = empty.clone();
        for (i, w) in zero.words.iter_mut().enumerate() {
            let remaining = nodes - i * 64;
            *w = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
            zero.summary[i / 64] |= 1 << (i % 64);
        }
        let mut levels = vec![empty; cap as usize + 1];
        levels[0] = zero;
        let mut level_occ = vec![0u64; (cap as usize + 1).div_ceil(64)];
        level_occ[0] = 1;
        NodeOccupancyMap {
            nodes,
            cap,
            occ: vec![0; nodes],
            levels,
            level_occ,
            sum: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Always `false`: the constructor rejects empty maps.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The saturation cap occupancies clamp to.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// The node's clamped occupancy.
    pub fn occupancy(&self, node: usize) -> u32 {
        self.occ[node]
    }

    /// Sum of all clamped occupancies.
    pub fn total(&self) -> u64 {
        self.sum
    }

    /// Sets `node` to occupancy `value` (clamped to the cap). O(1).
    pub fn set(&mut self, node: usize, value: u32) {
        let value = value.min(self.cap);
        let old = self.occ[node];
        if old == value {
            return;
        }
        self.remove(node, old);
        self.insert(node, value);
        self.occ[node] = value;
        self.sum = self.sum - u64::from(old) + u64::from(value);
    }

    /// Adds one unit of occupancy to `node` (saturating at the cap). O(1).
    pub fn inc(&mut self, node: usize) {
        self.set(node, self.occ[node].saturating_add(1));
    }

    /// Resets every node to occupancy 0.
    pub fn clear(&mut self) {
        *self = NodeOccupancyMap::new(self.nodes, self.cap);
    }

    /// The node with the lowest occupancy, ties broken toward the lowest
    /// node index (the linear-scan order). Three bit scans, O(1) in node
    /// count.
    pub fn min_node(&self) -> Option<usize> {
        let (lw, &word) = self.level_occ.iter().enumerate().find(|(_, w)| **w != 0)?;
        let level = lw * 64 + word.trailing_zeros() as usize;
        let lvl = &self.levels[level];
        let (sw, &sword) = lvl
            .summary
            .iter()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .expect("non-empty level has a summary bit");
        let w = sw * 64 + sword.trailing_zeros() as usize;
        Some(w * 64 + lvl.words[w].trailing_zeros() as usize)
    }

    fn remove(&mut self, node: usize, level: u32) {
        let lvl = &mut self.levels[level as usize];
        let w = node / 64;
        lvl.words[w] &= !(1u64 << (node % 64));
        if lvl.words[w] == 0 {
            lvl.summary[w / 64] &= !(1u64 << (w % 64));
            if lvl.summary.iter().all(|&s| s == 0) {
                self.level_occ[level as usize / 64] &= !(1u64 << (level % 64));
            }
        }
    }

    fn insert(&mut self, node: usize, level: u32) {
        let lvl = &mut self.levels[level as usize];
        let w = node / 64;
        lvl.words[w] |= 1u64 << (node % 64);
        lvl.summary[w / 64] |= 1u64 << (w % 64);
        self.level_occ[level as usize / 64] |= 1u64 << (level % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Oracle: naive left-to-right scan with strict `<`.
    fn scan_min(occ: &[u32]) -> usize {
        let mut best = 0;
        for (i, &o) in occ.iter().enumerate() {
            if o < occ[best] {
                best = i;
            }
        }
        best
    }

    #[test]
    fn fresh_map_picks_node_zero() {
        let map = NodeOccupancyMap::new(100, 8);
        assert_eq!(map.min_node(), Some(0));
        assert_eq!(map.total(), 0);
        assert_eq!(map.len(), 100);
    }

    #[test]
    fn min_matches_linear_scan_under_random_churn() {
        let mut rng = SimRng::seed(42);
        for &n in &[1usize, 63, 64, 65, 200, 1024] {
            let cap = 17;
            let mut map = NodeOccupancyMap::new(n, cap);
            let mut oracle = vec![0u32; n];
            for _ in 0..2000 {
                let node = rng.index(n);
                let v = rng.index(cap as usize + 4) as u32; // exercises clamping
                if rng.chance(0.3) {
                    map.inc(node);
                    oracle[node] = (oracle[node] + 1).min(cap);
                } else {
                    map.set(node, v);
                    oracle[node] = v.min(cap);
                }
                assert_eq!(map.min_node(), Some(scan_min(&oracle)), "n={n}");
                assert_eq!(
                    map.total(),
                    oracle.iter().map(|&o| u64::from(o)).sum::<u64>()
                );
            }
            for (i, &o) in oracle.iter().enumerate() {
                assert_eq!(map.occupancy(i), o);
            }
        }
    }

    #[test]
    fn ties_break_to_lowest_index() {
        let mut map = NodeOccupancyMap::new(130, 8);
        for i in 0..130 {
            map.set(i, 3);
        }
        map.set(70, 1);
        map.set(129, 1);
        assert_eq!(map.min_node(), Some(70));
        map.set(5, 1);
        assert_eq!(map.min_node(), Some(5));
    }

    #[test]
    fn clear_resets_to_fresh() {
        let mut map = NodeOccupancyMap::new(70, 4);
        for i in 0..70 {
            map.set(i, 4);
        }
        map.clear();
        assert_eq!(map.min_node(), Some(0));
        assert_eq!(map.total(), 0);
        assert_eq!(map.occupancy(69), 0);
    }
}
