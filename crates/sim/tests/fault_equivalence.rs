//! Fault-off differential battery: an engine built with
//! [`Engine::with_faults`]`(FaultSpec::none())` must stay **event-for-event
//! byte-identical** to a plain engine under arbitrary load levels, config
//! schedules and seeds — enabling the fault subsystem without arming it
//! draws zero RNG values, folds nothing into any digest, and leaves every
//! interval statistic bit-equal. This is the regression fence that pins
//! the pre-fault behavior of every existing scenario.
//!
//! The converse is also pinned: an *armed* spec (revocations or
//! stragglers at meaningful rates) must visibly perturb the run, so the
//! battery cannot rot into comparing two fault-free paths.

use hipster_platform::{CoreConfig, CoreKind, Frequency, Platform};
use hipster_sim::{
    interval_to_jsonl, Demand, Engine, FaultSpec, IntervalStats, LcModel, LoadPattern,
    MachineConfig, QosTarget, SimRng,
};
use proptest::prelude::*;

/// Deterministic toy LC workload (1 work unit per request).
#[derive(Debug)]
struct ToyLc;

impl LcModel for ToyLc {
    fn name(&self) -> &str {
        "toy"
    }
    fn max_load_rps(&self) -> f64 {
        1000.0
    }
    fn qos(&self) -> QosTarget {
        QosTarget::new(0.95, 0.010)
    }
    fn sample_demand(&self, _rng: &mut SimRng) -> Demand {
        Demand::new(1.0, 0.0)
    }
    fn service_speed(&self, kind: CoreKind, f: Frequency) -> f64 {
        match kind {
            CoreKind::Big => 1000.0 * f.ratio_to(Frequency::from_mhz(1150)),
            CoreKind::Small => 400.0,
        }
    }
}

#[derive(Debug)]
struct Flat(f64);

impl LoadPattern for Flat {
    fn load_at(&self, _t: f64) -> f64 {
        self.0
    }
    fn duration(&self) -> f64 {
        600.0
    }
}

fn cfg(label: &str) -> MachineConfig {
    let lc: CoreConfig = label.parse().unwrap();
    MachineConfig::interactive(&Platform::juno_r1(), lc)
}

/// The config schedule exercised: indices into this table are drawn by
/// proptest, covering core-count changes (preempting remaps), DVFS-only
/// re-keys, and mixed big/small intervals.
const CONFIGS: [&str; 5] = ["2B-1.15", "1B-0.60", "2B2S-0.90", "2S-0.65", "1B1S-1.15"];

fn drive(mut engine: Engine, schedule: &[usize]) -> Vec<IntervalStats> {
    schedule
        .iter()
        .map(|&c| engine.step(cfg(CONFIGS[c])))
        .collect()
}

fn toy_engine(load: f64, seed: u64) -> Engine {
    Engine::new(
        Platform::juno_r1(),
        Box::new(ToyLc),
        Box::new(Flat(load)),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `FaultSpec::none()` is byte-for-byte the fault-free engine.
    #[test]
    fn fault_off_engine_is_byte_identical(
        seed in 0u64..1_000_000,
        load in 0.05f64..0.95,
        schedule in proptest::collection::vec(0usize..CONFIGS.len(), 3..24),
    ) {
        let plain = drive(toy_engine(load, seed), &schedule);
        let off = drive(toy_engine(load, seed).with_faults(FaultSpec::none()), &schedule);
        prop_assert_eq!(plain.len(), off.len());
        for (a, b) in plain.iter().zip(&off) {
            // Bit-equal floats, not approximately-equal: the jsonl
            // rendering is the byte-level witness.
            prop_assert_eq!(interval_to_jsonl(a), interval_to_jsonl(b));
        }
    }

    /// An armed revocation spec perturbs the run for every seed: faults
    /// are real events, not dead configuration.
    #[test]
    fn armed_faults_perturb_the_run(seed in 0u64..10_000) {
        let schedule: Vec<usize> = (0..20).map(|i| i % CONFIGS.len()).collect();
        let spec = FaultSpec::none().with_revocations(0.8, 2.5).with_warned(0.5);
        let plain = drive(toy_engine(0.5, seed), &schedule);
        let on = drive(toy_engine(0.5, seed).with_faults(spec), &schedule);
        prop_assert!(
            plain.iter().zip(&on).any(|(a, b)| a != b),
            "a 0.8/s revocation wave over 20 s must alter at least one interval"
        );
    }
}

/// Straggler episodes alone (no revocations) also perturb the run — the
/// DVFS re-key path their slowdown multipliers ride is live.
#[test]
fn armed_stragglers_perturb_the_run() {
    let schedule: Vec<usize> = (0..30).map(|i| i % CONFIGS.len()).collect();
    let spec = FaultSpec::none().with_stragglers(0.5, 3.0, 1.5, 2.0, 8.0);
    let plain = drive(toy_engine(0.6, 11), &schedule);
    let on = drive(toy_engine(0.6, 11).with_faults(spec), &schedule);
    assert!(plain.iter().zip(&on).any(|(a, b)| a != b));
}
