//! Differential property test: the heap-indexed [`ServiceNode`] must
//! reproduce the frozen pre-PR3 linear-scan [`ReferenceNode`] event for
//! event — identical completion streams, timeouts, and bit-identical
//! interval statistics — under arbitrary arrival / advance / preempt /
//! DVFS-reconfigure / interval-boundary sequences.

use hipster_platform::{CoreKind, Frequency};
use hipster_sim::reference::ReferenceNode;
use hipster_sim::{Demand, ServerSpec, ServiceNode};
use proptest::prelude::*;

/// One step of the driving sequence, generated from raw random draws.
#[derive(Debug, Clone)]
enum Op {
    /// Let `dt` pass, processing completions, then submit a request.
    Arrive { dt: f64, work: f64, mem: f64 },
    /// Let `dt` pass, processing completions.
    Advance { dt: f64 },
    /// Preempting reconfiguration to `n` servers with speeds drawn from
    /// `speed_seed`, stalled by `stall`.
    Remap {
        n: usize,
        speed_seed: u64,
        stall: f64,
    },
    /// DVFS-style rescale of the current servers (no count change).
    Rescale { factor: f64, stall: f64 },
    /// Close the monitoring interval and open the next one.
    Interval,
}

fn specs_for(n: usize, speed_seed: u64) -> Vec<ServerSpec> {
    (0..n)
        .map(|i| {
            // A few equal-speed servers to exercise dispatch ties, plus
            // distinct speeds to exercise the ordering.
            let speed = match (speed_seed as usize + i) % 4 {
                0 | 1 => 2.0,
                2 => 1.0,
                _ => 4.0,
            };
            ServerSpec {
                kind: if i % 2 == 0 {
                    CoreKind::Big
                } else {
                    CoreKind::Small
                },
                freq: Frequency::from_mhz(1000),
                speed,
                slowdown: 1.0 + (i % 3) as f64 * 0.25,
            }
        })
        .collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..0.4, 0.1f64..4.0, 0.0f64..0.5).prop_map(|(dt, work, mem)| Op::Arrive {
            dt,
            work,
            mem
        }),
        (0.0f64..1.0).prop_map(|dt| Op::Advance { dt }),
        (1usize..6, 0u64..8, 0.0f64..0.3).prop_map(|(n, speed_seed, stall)| Op::Remap {
            n,
            speed_seed,
            stall
        }),
        (0.5f64..2.0, 0.0f64..0.1).prop_map(|(factor, stall)| Op::Rescale { factor, stall }),
        Just(Op::Interval),
    ]
}

/// Applies `ops` to both implementations in lock-step, asserting identical
/// observable behaviour after every step.
fn run_differential(ops: &[Op], timeout: Option<f64>) {
    let mut new = ServiceNode::new();
    let mut old = ReferenceNode::new();
    new.set_timeout(timeout);
    old.set_timeout(timeout);
    let initial = specs_for(2, 0);
    let mut current_specs = initial.clone();
    new.reconfigure(0.0, &initial, true, 0.0);
    old.reconfigure(0.0, &initial, true, 0.0);
    new.begin_interval(0.0);
    old.begin_interval(0.0);

    let mut now = 0.0f64;
    let mut interval_start = 0.0f64;
    // Pending kick from the last stalled reconfiguration: delivered (like
    // the engine's event loop) before the first later event, so arrivals
    // and advances land *inside* the stall window.
    let mut kick_at: Option<f64> = None;
    let mut new_done = Vec::new();
    let mut old_done = Vec::new();
    let deliver_kick =
        |new: &mut ServiceNode, old: &mut ReferenceNode, kick_at: &mut Option<f64>, t: f64| {
            if let Some(k) = *kick_at {
                if k <= t {
                    new.kick(k);
                    old.kick(k);
                    *kick_at = None;
                }
            }
        };
    for op in ops {
        match *op {
            Op::Arrive { dt, work, mem } => {
                now += dt;
                deliver_kick(&mut new, &mut old, &mut kick_at, now);
                new_done.clear();
                old_done.clear();
                new.advance_collect(now, &mut new_done);
                old.advance_collect(now, &mut old_done);
                assert_eq!(new_done, old_done, "completion streams diverged");
                let d = Demand::new(work, mem);
                new.arrive(now, d);
                old.arrive(now, d);
            }
            Op::Advance { dt } => {
                now += dt;
                deliver_kick(&mut new, &mut old, &mut kick_at, now);
                new_done.clear();
                old_done.clear();
                new.advance_collect(now, &mut new_done);
                old.advance_collect(now, &mut old_done);
                assert_eq!(new_done, old_done, "completion streams diverged");
            }
            Op::Remap {
                n,
                speed_seed,
                stall,
            } => {
                current_specs = specs_for(n, speed_seed);
                new.reconfigure(now, &current_specs, true, stall);
                old.reconfigure(now, &current_specs, true, stall);
                kick_at = if stall > 0.0 { Some(now + stall) } else { None };
            }
            Op::Rescale { factor, stall } => {
                for s in &mut current_specs {
                    s.speed *= factor;
                }
                new.reconfigure(now, &current_specs, false, stall);
                old.reconfigure(now, &current_specs, false, stall);
                kick_at = if stall > 0.0 { Some(now + stall) } else { None };
            }
            Op::Interval => {
                now = now.max(interval_start + 1e-6);
                deliver_kick(&mut new, &mut old, &mut kick_at, now);
                let a = new.end_interval(now, 0.95);
                let b = old.end_interval(now, 0.95);
                assert_eq!(a, b, "interval stats diverged");
                interval_start = now;
                new.begin_interval(now);
                old.begin_interval(now);
            }
        }
        assert_eq!(new.queue_len(), old.queue_len(), "queue length diverged");
        assert_eq!(new.in_flight(), old.in_flight(), "in-flight diverged");
        assert_eq!(
            new.next_completion(),
            old.next_completion(),
            "next completion diverged"
        );
        assert_eq!(new.total_completed(), old.total_completed());
    }
    // Drain both and compare the final interval.
    now += 1000.0;
    deliver_kick(&mut new, &mut old, &mut kick_at, now);
    new_done.clear();
    old_done.clear();
    new.advance_collect(now, &mut new_done);
    old.advance_collect(now, &mut old_done);
    assert_eq!(new_done, old_done, "drain streams diverged");
    let a = new.end_interval(now, 0.95);
    let b = old.end_interval(now, 0.95);
    assert_eq!(a, b, "final interval stats diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heap_node_matches_reference_node(
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        run_differential(&ops, None);
    }

    #[test]
    fn heap_node_matches_reference_node_with_timeouts(
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        run_differential(&ops, Some(0.75));
    }
}
