//! Property-based tests on the discrete-event engine's invariants.

use hipster_platform::{CoreConfig, CoreKind, Frequency, Platform};
use hipster_sim::{
    Demand, Engine, LcModel, LoadPattern, MachineConfig, QosTarget, ServerSpec, ServiceNode, SimRng,
};
use proptest::prelude::*;

#[derive(Debug)]
struct PropLc {
    work: f64,
    mem: f64,
}

impl LcModel for PropLc {
    fn name(&self) -> &str {
        "prop"
    }
    fn max_load_rps(&self) -> f64 {
        500.0
    }
    fn qos(&self) -> QosTarget {
        QosTarget::new(0.95, 0.05)
    }
    fn sample_demand(&self, _rng: &mut SimRng) -> Demand {
        Demand::new(self.work, self.mem)
    }
    fn service_speed(&self, kind: CoreKind, f: Frequency) -> f64 {
        let base = match kind {
            CoreKind::Big => 1000.0,
            CoreKind::Small => 400.0,
        };
        base * f.ratio_to(Frequency::from_mhz(1150))
    }
}

#[derive(Debug)]
struct FixedLoad(f64);

impl LoadPattern for FixedLoad {
    fn load_at(&self, _t: f64) -> f64 {
        self.0
    }
    fn duration(&self) -> f64 {
        1e9
    }
}

fn any_config() -> impl Strategy<Value = CoreConfig> {
    (
        0usize..=2,
        0usize..=4,
        prop_oneof![Just(600u32), Just(900), Just(1150)],
    )
        .prop_filter_map("non-empty", |(nb, ns, mhz)| {
            (nb + ns > 0).then(|| {
                CoreConfig::new(nb, ns, Frequency::from_mhz(mhz), Frequency::from_mhz(650))
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Request conservation: arrivals = completions + queued + in-flight,
    /// across arbitrary config changes.
    #[test]
    fn request_conservation(
        configs in prop::collection::vec(any_config(), 1..8),
        load in 0.05f64..1.2,
        seed in 0u64..1000,
    ) {
        let platform = Platform::juno_r1();
        let mut engine = Engine::new(
            platform.clone(),
            Box::new(PropLc { work: 1.0, mem: 0.0005 }),
            Box::new(FixedLoad(load)),
            seed,
        );
        let mut arrivals = 0usize;
        let mut completions = 0usize;
        let mut last = None;
        for c in configs {
            let s = engine.step(MachineConfig::interactive(&platform, c));
            arrivals += s.arrivals;
            completions += s.completions;
            last = Some(s);
        }
        let s = last.unwrap();
        let outstanding = arrivals - completions;
        // queue_len excludes in-flight; in-flight ≤ number of servers.
        prop_assert!(outstanding >= s.queue_len);
        prop_assert!(outstanding <= s.queue_len + s.config.lc.total_cores());
    }

    /// Busy fractions are valid and zero-load intervals stay quiet.
    #[test]
    fn busy_fractions_valid(cfg in any_config(), load in 0.0f64..1.0, seed in 0u64..500) {
        let platform = Platform::juno_r1();
        let mut engine = Engine::new(
            platform.clone(),
            Box::new(PropLc { work: 1.0, mem: 0.0 }),
            Box::new(FixedLoad(load)),
            seed,
        );
        for _ in 0..3 {
            let s = engine.step(MachineConfig::interactive(&platform, cfg));
            for &b in &s.lc_busy {
                prop_assert!((0.0..=1.0).contains(&b), "busy {b}");
            }
            prop_assert!(s.power.total() > 0.0);
            prop_assert!(s.energy_j > 0.0);
            prop_assert!(s.tail_latency_s >= 0.0);
        }
    }

    /// Bit-identical traces from identical seeds, for any config sequence.
    #[test]
    fn engine_is_deterministic(
        configs in prop::collection::vec(any_config(), 1..6),
        load in 0.1f64..1.0,
        seed in 0u64..100,
    ) {
        let run = || {
            let platform = Platform::juno_r1();
            let mut engine = Engine::new(
                platform.clone(),
                Box::new(PropLc { work: 1.0, mem: 0.001 }),
                Box::new(FixedLoad(load)),
                seed,
            );
            configs
                .iter()
                .map(|c| {
                    let s = engine.step(MachineConfig::interactive(&platform, *c));
                    (s.arrivals, s.completions, s.tail_latency_s.to_bits(), s.energy_j.to_bits())
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Service-node latency lower bound: no request finishes faster than
    /// its pure service time on the fastest server.
    #[test]
    fn latency_at_least_service_time(
        work in 0.1f64..10.0,
        mem in 0.0f64..0.01,
        n_req in 1usize..30,
    ) {
        let mut node = ServiceNode::new();
        let speed = 100.0;
        node.reconfigure(
            0.0,
            &[ServerSpec {
                kind: CoreKind::Big,
                freq: Frequency::from_mhz(1150),
                speed,
                slowdown: 1.0,
            }],
            true,
            0.0,
        );
        node.begin_interval(0.0);
        for i in 0..n_req {
            node.arrive(i as f64 * 0.001, Demand::new(work, mem));
        }
        node.advance(1e9);
        let iv = node.end_interval(1e9, 0.0); // p0 = fastest request
        let min_service = work / speed + mem;
        prop_assert!(iv.tail_latency_s >= min_service - 1e-9,
            "fastest latency {} < service time {min_service}", iv.tail_latency_s);
        prop_assert_eq!(iv.completions, n_req);
    }
}
