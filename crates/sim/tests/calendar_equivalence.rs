//! Differential property battery: the PR 6 [`CalendarQueue`] must
//! reproduce the frozen PR 5 packed-`u128` binary heap
//! ([`PackedHeap`]) **event for event** — identical `(finish, server)`
//! pop sequences under every regime the node can throw at it:
//!
//! * raw-queue interleavings of pushes and bounded pops, including
//!   far-future events that alias around the bucket ring for thousands of
//!   rotations, same-bucket tie storms (many events at one bit-identical
//!   time), bursty MMPP-shaped arrival clusters (tight clumps separated by
//!   calm gaps — CloudCoaster's regime), population swings that cross the
//!   queue's grow/shrink thresholds in both directions, DVFS-style
//!   drain/rescale/rebuild re-keying, and `total_cmp` extremes
//!   (infinities, negative zero, NaN);
//! * whole-node interleavings — arrival / advance / preempt / stall /
//!   DVFS-reconfigure / timeout shedding — by racing the production
//!   [`ServiceNode`] against [`PackedHeapNode`], the same node body
//!   instantiated over the frozen heap, asserting bit-identical completion
//!   streams and interval statistics;
//! * a parallel [`ThinkPool`] differential against the frozen
//!   [`HeapThinkPool`], covering `retire_latest` population shrinks.
//!
//! This is the PR 6 counterpart of `dispatch_equivalence.rs` (PR 5 bitmap
//! free lists vs heap node) and `node_equivalence.rs` (production node vs
//! pre-PR3 scans).

use hipster_platform::{CoreKind, Frequency};
use hipster_sim::reference::{HeapThinkPool, PackedHeap, PackedHeapNode};
use hipster_sim::{CalendarQueue, CompletionQueue, Demand, ServerSpec, ServiceNode, ThinkPool};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Raw-queue differential: CalendarQueue vs frozen PackedHeap.
// ---------------------------------------------------------------------------

/// One step of the raw-queue driving sequence. Times are generated
/// relative to a sliding `now` so pops keep the queues non-degenerate.
#[derive(Debug, Clone)]
enum QOp {
    /// A plain event at `now + dt`.
    Push { dt: f64 },
    /// A same-bucket tie storm: `count` events at one bit-identical time.
    PushTies { dt: f64, count: usize },
    /// A far-future event `mult × 1e6` seconds out — it aliases around
    /// the bucket ring through thousands of virtual rotations.
    PushFar { mult: f64 },
    /// An MMPP-shaped burst: `count` events clumped within `spread`
    /// seconds after a calm gap of `gap` seconds (the two-state
    /// bursty/calm arrival shape).
    Burst { gap: f64, spread: f64, count: usize },
    /// A `total_cmp` extreme drawn from a fixed table (infinities,
    /// negative zero, huge/tiny magnitudes).
    PushWeird { pick: usize },
    /// Pop up to `k` events unconditionally (drives shrink resizes).
    PopSome { k: usize },
    /// Pop everything due within the next `dt` seconds (the node's
    /// `advance` shape: a bounded `pop_if_le` drain).
    PopDue { dt: f64 },
    /// DVFS-style re-key: drain both queues, rescale every time by
    /// `factor` (about an anchor so times stay near `now`), rebuild.
    Rescale { factor: f64 },
}

fn qop_strategy() -> impl Strategy<Value = QOp> {
    prop_oneof![
        (0.0f64..4.0).prop_map(|dt| QOp::Push { dt }),
        (0.0f64..2.0, 2usize..40).prop_map(|(dt, count)| QOp::PushTies { dt, count }),
        (0.001f64..5000.0).prop_map(|mult| QOp::PushFar { mult }),
        (0.5f64..20.0, 0.0001f64..0.05, 4usize..48).prop_map(|(gap, spread, count)| QOp::Burst {
            gap,
            spread,
            count
        }),
        (0usize..8).prop_map(|pick| QOp::PushWeird { pick }),
        (1usize..64).prop_map(|k| QOp::PopSome { k }),
        (0.0f64..8.0).prop_map(|dt| QOp::PopDue { dt }),
        (0.25f64..4.0).prop_map(|factor| QOp::Rescale { factor }),
    ]
}

/// `total_cmp` extremes the key mapping must order identically in both
/// structures. (NaN is exercised by the dedicated unit tests in
/// `calendar.rs`; here every popped time must also move the clock, which
/// NaN cannot.)
const WEIRD: [f64; 8] = [
    f64::INFINITY,
    f64::NEG_INFINITY,
    -0.0,
    0.0,
    1e300,
    -1e300,
    f64::MIN_POSITIVE,
    4e9,
];

/// Applies `ops` to both queues in lock-step, asserting identical pops,
/// peeks and lengths after every step, then drains both to the end.
fn run_queue_differential(ops: &[QOp]) {
    let mut cal = CalendarQueue::new();
    let mut heap = PackedHeap::new();
    let mut now = 0.0f64;
    let mut payload = 0usize;
    let mut scratch_a: Vec<(f64, usize)> = Vec::new();
    let mut scratch_b: Vec<(f64, usize)> = Vec::new();

    let push_both = |cal: &mut CalendarQueue, heap: &mut PackedHeap, t: f64, p: &mut usize| {
        cal.push(t, *p);
        heap.push(t, *p);
        *p += 1;
    };

    for op in ops {
        match *op {
            QOp::Push { dt } => push_both(&mut cal, &mut heap, now + dt, &mut payload),
            QOp::PushTies { dt, count } => {
                let t = now + dt;
                for _ in 0..count {
                    push_both(&mut cal, &mut heap, t, &mut payload);
                }
            }
            QOp::PushFar { mult } => {
                push_both(&mut cal, &mut heap, now + mult * 1e6, &mut payload);
            }
            QOp::Burst { gap, spread, count } => {
                let start = now + gap;
                for i in 0..count {
                    let t = start + spread * (i as f64 / count as f64);
                    push_both(&mut cal, &mut heap, t, &mut payload);
                }
            }
            QOp::PushWeird { pick } => {
                push_both(&mut cal, &mut heap, WEIRD[pick % WEIRD.len()], &mut payload);
            }
            QOp::PopSome { k } => {
                for _ in 0..k {
                    let a = cal.pop_if_le(f64::INFINITY);
                    let b = heap.pop_if_le(f64::INFINITY);
                    assert_eq!(
                        a.map(|(t, s)| (t.to_bits(), s)),
                        b.map(|(t, s)| (t.to_bits(), s)),
                        "unbounded pop diverged"
                    );
                    match a {
                        Some((t, _)) => now = now.max(t.min(1e250)),
                        None => break,
                    }
                }
            }
            QOp::PopDue { dt } => {
                let to = now + dt;
                loop {
                    let a = cal.pop_if_le(to);
                    let b = heap.pop_if_le(to);
                    assert_eq!(
                        a.map(|(t, s)| (t.to_bits(), s)),
                        b.map(|(t, s)| (t.to_bits(), s)),
                        "bounded pop diverged at to={to}"
                    );
                    if a.is_none() {
                        break;
                    }
                }
                now = to;
            }
            QOp::Rescale { factor } => {
                // Drain both (unspecified order), canonicalise to one
                // scratch, re-key, rebuild both from identical input —
                // exactly the node's DVFS rescale shape.
                cal.drain_unordered(&mut scratch_a);
                CompletionQueue::drain_unordered(&mut heap, &mut scratch_b);
                scratch_a.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                scratch_b.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                assert_eq!(
                    scratch_a
                        .iter()
                        .map(|&(t, s)| (t.to_bits(), s))
                        .collect::<Vec<_>>(),
                    scratch_b
                        .iter()
                        .map(|&(t, s)| (t.to_bits(), s))
                        .collect::<Vec<_>>(),
                    "drained multisets diverged"
                );
                for e in &mut scratch_a {
                    e.0 = now + (e.0 - now) * factor;
                }
                scratch_b.clear();
                scratch_b.extend_from_slice(&scratch_a);
                cal.rebuild_from_unpacked(&mut scratch_a);
                CompletionQueue::rebuild_from(&mut heap, &mut scratch_b);
            }
        }
        assert_eq!(cal.len(), heap.len(), "len diverged");
        assert_eq!(
            cal.peek_min_time().map(f64::to_bits),
            heap.peek_finish().map(f64::to_bits),
            "peek diverged"
        );
    }
    // Full drain: every remaining event must pop in the same order.
    loop {
        let a = cal.pop_if_le(f64::INFINITY);
        let b = heap.pop_if_le(f64::INFINITY);
        assert_eq!(
            a.map(|(t, s)| (t.to_bits(), s)),
            b.map(|(t, s)| (t.to_bits(), s)),
            "final drain diverged"
        );
        if a.is_none() {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// ThinkPool differential: calendar pool vs frozen binary-heap pool.
// ---------------------------------------------------------------------------

/// One step of the thinking-pool driving sequence.
#[derive(Debug, Clone)]
enum POp {
    /// A think expiry at `now + dt` (exponential-ish spread).
    Push { dt: f64 },
    /// `count` bit-identical expiries (closed-loop clients released by
    /// one batch of completions at the same instant).
    PushTies { dt: f64, count: usize },
    /// Pop up to `k` earliest expiries.
    PopSome { k: usize },
    /// Retire the `k` latest thinkers (interval-boundary population
    /// shrink).
    RetireLatest { k: usize },
}

fn pop_strategy() -> impl Strategy<Value = POp> {
    prop_oneof![
        (0.0f64..10.0).prop_map(|dt| POp::Push { dt }),
        (0.0f64..2.0, 2usize..32).prop_map(|(dt, count)| POp::PushTies { dt, count }),
        (1usize..48).prop_map(|k| POp::PopSome { k }),
        (0usize..24).prop_map(|k| POp::RetireLatest { k }),
    ]
}

fn run_pool_differential(ops: &[POp]) {
    let mut cal = ThinkPool::new();
    let mut heap = HeapThinkPool::new();
    let mut now = 0.0f64;
    for op in ops {
        match *op {
            POp::Push { dt } => {
                cal.push(now + dt);
                heap.push(now + dt);
            }
            POp::PushTies { dt, count } => {
                for _ in 0..count {
                    cal.push(now + dt);
                    heap.push(now + dt);
                }
            }
            POp::PopSome { k } => {
                for _ in 0..k {
                    let a = cal.pop_min();
                    let b = heap.pop_min();
                    assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "pool pop diverged"
                    );
                    match a {
                        Some(t) => now = now.max(t),
                        None => break,
                    }
                }
            }
            POp::RetireLatest { k } => {
                cal.retire_latest(k);
                heap.retire_latest(k);
            }
        }
        assert_eq!(cal.len(), heap.len(), "pool len diverged");
        assert_eq!(
            cal.peek_min().map(f64::to_bits),
            heap.peek_min().map(f64::to_bits),
            "pool peek diverged"
        );
    }
    loop {
        let a = cal.pop_min();
        let b = heap.pop_min();
        assert_eq!(
            a.map(f64::to_bits),
            b.map(f64::to_bits),
            "pool final drain diverged"
        );
        if a.is_none() {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-node differential: ServiceNode (calendar) vs PackedHeapNode
// (frozen PR 5 heap) under arrival / preempt / stall / DVFS / timeout
// interleavings — the same op language as dispatch_equivalence.rs, with
// the oracle swapped to the node whose *only* difference is the queue.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Arrive { dt: f64, work: f64, mem: f64 },
    Advance { dt: f64 },
    Remap { n: usize, mix_seed: u64, stall: f64 },
    Rescale { factor: f64, stall: f64 },
    Interval,
}

fn specs_for(n: usize, mix_seed: u64) -> Vec<ServerSpec> {
    (0..n)
        .map(|i| {
            let speed = match (mix_seed as usize + i) % 5 {
                0 | 1 => 2.0,
                2 => 0.8,
                3 => 4.0,
                _ => 2.0,
            };
            ServerSpec {
                kind: if speed >= 2.0 {
                    CoreKind::Big
                } else {
                    CoreKind::Small
                },
                freq: Frequency::from_mhz(1000),
                speed,
                slowdown: 1.0 + ((mix_seed as usize + i) % 3) as f64 * 0.5,
            }
        })
        .collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..0.4, 0.1f64..4.0, 0.0f64..0.5).prop_map(|(dt, work, mem)| Op::Arrive {
            dt,
            work,
            mem
        }),
        (0.0f64..1.0).prop_map(|dt| Op::Advance { dt }),
        (1usize..9, 0u64..10, 0.0f64..0.3).prop_map(|(n, mix_seed, stall)| Op::Remap {
            n,
            mix_seed,
            stall
        }),
        (0.5f64..2.0, 0.0f64..0.1).prop_map(|(factor, stall)| Op::Rescale { factor, stall }),
        Just(Op::Interval),
    ]
}

fn run_node_differential(ops: &[Op], timeout: Option<f64>) {
    let mut cal = ServiceNode::new();
    let mut heap = PackedHeapNode::new();
    cal.set_timeout(timeout);
    heap.set_timeout(timeout);
    let initial = specs_for(3, 1);
    let mut current_specs = initial.clone();
    cal.reconfigure(0.0, &initial, true, 0.0);
    heap.reconfigure(0.0, &initial, true, 0.0);
    cal.begin_interval(0.0);
    heap.begin_interval(0.0);

    let mut now = 0.0f64;
    let mut interval_start = 0.0f64;
    let mut kick_at: Option<f64> = None;
    let mut cal_done = Vec::new();
    let mut heap_done = Vec::new();
    let deliver_kick =
        |cal: &mut ServiceNode, heap: &mut PackedHeapNode, kick_at: &mut Option<f64>, t: f64| {
            if let Some(k) = *kick_at {
                if k <= t {
                    cal.kick(k);
                    heap.kick(k);
                    *kick_at = None;
                }
            }
        };
    for op in ops {
        match *op {
            Op::Arrive { dt, work, mem } => {
                now += dt;
                deliver_kick(&mut cal, &mut heap, &mut kick_at, now);
                cal_done.clear();
                heap_done.clear();
                cal.advance_collect(now, &mut cal_done);
                heap.advance_collect(now, &mut heap_done);
                assert_eq!(cal_done, heap_done, "completion streams diverged");
                let d = Demand::new(work, mem);
                cal.arrive(now, d);
                heap.arrive(now, d);
            }
            Op::Advance { dt } => {
                now += dt;
                deliver_kick(&mut cal, &mut heap, &mut kick_at, now);
                cal_done.clear();
                heap_done.clear();
                cal.advance_collect(now, &mut cal_done);
                heap.advance_collect(now, &mut heap_done);
                assert_eq!(cal_done, heap_done, "completion streams diverged");
            }
            Op::Remap { n, mix_seed, stall } => {
                current_specs = specs_for(n, mix_seed);
                cal.reconfigure(now, &current_specs, true, stall);
                heap.reconfigure(now, &current_specs, true, stall);
                kick_at = if stall > 0.0 { Some(now + stall) } else { None };
            }
            Op::Rescale { factor, stall } => {
                for s in &mut current_specs {
                    s.speed *= factor;
                }
                cal.reconfigure(now, &current_specs, false, stall);
                heap.reconfigure(now, &current_specs, false, stall);
                kick_at = if stall > 0.0 { Some(now + stall) } else { None };
            }
            Op::Interval => {
                now = now.max(interval_start + 1e-6);
                deliver_kick(&mut cal, &mut heap, &mut kick_at, now);
                let a = cal.end_interval(now, 0.95);
                let b = heap.end_interval(now, 0.95);
                assert_eq!(a, b, "interval stats diverged");
                interval_start = now;
                cal.begin_interval(now);
                heap.begin_interval(now);
            }
        }
        assert_eq!(cal.queue_len(), heap.queue_len(), "queue len diverged");
        assert_eq!(cal.in_flight(), heap.in_flight(), "in-flight diverged");
        assert_eq!(
            cal.next_completion(),
            heap.next_completion(),
            "next completion diverged"
        );
        assert_eq!(cal.total_completed(), heap.total_completed());
    }
    now += 1000.0;
    deliver_kick(&mut cal, &mut heap, &mut kick_at, now);
    cal_done.clear();
    heap_done.clear();
    cal.advance_collect(now, &mut cal_done);
    heap.advance_collect(now, &mut heap_done);
    assert_eq!(cal_done, heap_done, "drain streams diverged");
    let a = cal.end_interval(now, 0.95);
    let b = heap.end_interval(now, 0.95);
    assert_eq!(a, b, "final interval stats diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn calendar_queue_matches_packed_heap(
        ops in prop::collection::vec(qop_strategy(), 1..300),
    ) {
        run_queue_differential(&ops);
    }

    #[test]
    fn calendar_pool_matches_heap_pool(
        ops in prop::collection::vec(pop_strategy(), 1..300),
    ) {
        run_pool_differential(&ops);
    }

    #[test]
    fn calendar_node_matches_packed_heap_node(
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        run_node_differential(&ops, None);
    }

    #[test]
    fn calendar_node_matches_packed_heap_node_with_timeouts(
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        run_node_differential(&ops, Some(0.75));
    }
}
