//! Engine behaviour tests with controlled toy workload models.

use hipster_platform::{CoreConfig, CoreKind, Frequency, Platform};
use hipster_sim::{
    BatchProgram, ContentionModel, Demand, Engine, LcModel, LoadPattern, MachineConfig, QosTarget,
    ReconfigCosts, SimRng, Trace,
};

/// Toy LC workload: each request needs 1 work unit; a big core at max DVFS
/// retires 1000 units/s (1 ms service), a small core 400 (2.5 ms).
#[derive(Debug)]
struct ToyLc {
    max_rps: f64,
}

impl LcModel for ToyLc {
    fn name(&self) -> &str {
        "toy"
    }
    fn max_load_rps(&self) -> f64 {
        self.max_rps
    }
    fn qos(&self) -> QosTarget {
        QosTarget::new(0.95, 0.010)
    }
    fn sample_demand(&self, _rng: &mut SimRng) -> Demand {
        Demand::new(1.0, 0.0)
    }
    fn service_speed(&self, kind: CoreKind, f: Frequency) -> f64 {
        match kind {
            CoreKind::Big => 1000.0 * f.ratio_to(Frequency::from_mhz(1150)),
            CoreKind::Small => 400.0,
        }
    }
}

#[derive(Debug)]
struct Flat(f64);

impl LoadPattern for Flat {
    fn load_at(&self, _t: f64) -> f64 {
        self.0
    }
    fn duration(&self) -> f64 {
        60.0
    }
}

#[derive(Debug)]
struct ToyBatch;

impl BatchProgram for ToyBatch {
    fn name(&self) -> &str {
        "toybatch"
    }
    fn ips(&self, kind: CoreKind, f: Frequency) -> f64 {
        match kind {
            CoreKind::Big => 2.0e9 * f.ratio_to(Frequency::from_mhz(1150)),
            CoreKind::Small => 0.8e9 * f.ratio_to(Frequency::from_mhz(650)),
        }
    }
}

fn engine(load: f64, seed: u64) -> Engine {
    Engine::new(
        Platform::juno_r1(),
        Box::new(ToyLc { max_rps: 1000.0 }),
        Box::new(Flat(load)),
        seed,
    )
}

fn cfg(label: &str) -> MachineConfig {
    let lc: CoreConfig = label.parse().unwrap();
    MachineConfig::interactive(&Platform::juno_r1(), lc)
}

#[test]
fn low_load_meets_qos_on_big_cores() {
    let mut e = engine(0.3, 1);
    let c = cfg("2B-1.15");
    let mut trace = Trace::new();
    for _ in 0..20 {
        trace.push(e.step(c));
    }
    let qos = QosTarget::new(0.95, 0.010);
    assert_eq!(trace.qos_guarantee_pct(qos), 100.0);
    // ~300 rps offered.
    let s = &trace.intervals()[10];
    assert!(s.arrivals > 200 && s.arrivals < 400, "{}", s.arrivals);
}

#[test]
fn overload_violates_qos() {
    // 1000 rps need 1 core-second of big-core work per second; one small
    // core at 400 units/s is hopeless.
    let mut e = engine(1.0, 2);
    let c = cfg("1S-0.65");
    let mut last = None;
    for _ in 0..10 {
        last = Some(e.step(c));
    }
    let s = last.unwrap();
    assert!(s.tail_latency_s > 0.010, "tail {}", s.tail_latency_s);
    assert!(s.queue_len > 100, "queue should explode: {}", s.queue_len);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut e = engine(0.6, 42);
        let c = cfg("2B2S-0.90");
        (0..15).map(|_| e.step(c)).collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.arrivals, y.arrivals);
        assert_eq!(x.completions, y.completions);
        assert!((x.tail_latency_s - y.tail_latency_s).abs() < 1e-15);
        assert!((x.energy_j - y.energy_j).abs() < 1e-12);
    }
}

#[test]
fn dvfs_lowers_power_and_raises_latency() {
    let mut hi = engine(0.5, 3);
    let mut lo = engine(0.5, 3);
    let chi = cfg("2B-1.15");
    let clo = cfg("2B-0.60");
    let mut p_hi = 0.0;
    let mut p_lo = 0.0;
    let mut l_hi = 0.0;
    let mut l_lo = 0.0;
    for _ in 0..20 {
        let a = hi.step(chi);
        let b = lo.step(clo);
        p_hi += a.power.total();
        p_lo += b.power.total();
        l_hi += a.tail_latency_s;
        l_lo += b.tail_latency_s;
    }
    assert!(p_lo < p_hi, "low DVFS must draw less power");
    assert!(l_lo > l_hi, "low DVFS must be slower");
}

#[test]
fn migration_stall_hurts_tail_latency() {
    // Oscillate between mappings every interval vs staying put, at a load
    // where both mappings can serve the demand.
    let costs = ReconfigCosts {
        core_migration_stall_s: 0.050,
        dvfs_stall_s: 0.0,
        cold_cache_penalty: 1.3,
    };
    let mut osc = engine(0.7, 4).with_costs(costs);
    let mut stay = engine(0.7, 4).with_costs(costs);
    let a = cfg("2B-1.15");
    let b = cfg("4S-0.65");
    let mut osc_tail = 0.0;
    let mut stay_tail = 0.0;
    for i in 0..30 {
        let c = if i % 2 == 0 { a } else { b };
        osc_tail += osc.step(c).tail_latency_s;
        stay_tail += stay.step(a).tail_latency_s;
    }
    assert!(
        osc_tail > 2.0 * stay_tail,
        "oscillation tail {osc_tail} vs stable {stay_tail}"
    );
}

#[test]
fn batch_jobs_run_on_remaining_cores() {
    let mut e = engine(0.2, 5).with_batch_pool(vec![Box::new(ToyBatch)]);
    let lc: CoreConfig = "2S-0.65".parse().unwrap();
    let c = MachineConfig::collocated(&Platform::juno_r1(), lc);
    // LC on small cores only → big cluster boosted to max for batch.
    assert_eq!(c.big_freq, Frequency::from_mhz(1150));
    let s = e.step(c);
    // 2 big batch cores at 2 GIPS + 2 small batch cores at 0.8 GIPS.
    assert!((s.batch_ips_big - 4.0e9).abs() < 1e6, "{}", s.batch_ips_big);
    assert!(
        (s.batch_ips_small - 1.6e9).abs() < 1e6,
        "{}",
        s.batch_ips_small
    );
    assert!(s.counters_valid);
}

#[test]
fn batch_disabled_means_no_batch_ips() {
    let mut e = engine(0.2, 6).with_batch_pool(vec![Box::new(ToyBatch)]);
    let s = e.step(cfg("2S-0.65"));
    assert_eq!(s.batch_ips_big, 0.0);
    assert_eq!(s.batch_ips_small, 0.0);
}

#[test]
fn contention_from_batch_slows_lc() {
    let contention = ContentionModel {
        same_cluster_per_batch_core: 0.5,
        global_per_batch_core: 0.1,
    };
    let mk = |with_batch: bool| {
        let mut e = engine(0.8, 7).with_contention(contention);
        if with_batch {
            e = e.with_batch_pool(vec![Box::new(ToyBatch)]);
        }
        let lc: CoreConfig = "1B1S-1.15".parse().unwrap();
        let c = if with_batch {
            MachineConfig::collocated(&Platform::juno_r1(), lc)
        } else {
            MachineConfig::interactive(&Platform::juno_r1(), lc)
        };
        let mut tail = 0.0;
        for _ in 0..10 {
            tail += e.step(c).tail_latency_s;
        }
        tail
    };
    let with = mk(true);
    let without = mk(false);
    assert!(
        with > 1.2 * without,
        "contention must inflate tails: {with} vs {without}"
    );
}

#[test]
fn perf_quirk_corrupts_counters_until_cpuidle_disabled() {
    let mut e = engine(0.05, 8)
        .with_batch_pool(vec![Box::new(ToyBatch)])
        .with_perf_quirk(true);
    // Low load → idle stretches on LC cores → garbage window.
    let lc: CoreConfig = "2S-0.65".parse().unwrap();
    let c = MachineConfig::collocated(&Platform::juno_r1(), lc);
    let s = e.step(c);
    assert!(!s.counters_valid);
    assert!(s.batch_ips_big > 1.0e17, "garbage values expected");

    e.disable_cpuidle();
    let s = e.step(c);
    assert!(s.counters_valid);
    assert!((s.batch_ips_big - 4.0e9).abs() < 1e6);
}

#[test]
fn energy_meter_accumulates_across_steps() {
    let mut e = engine(0.5, 9);
    let c = cfg("2B-0.90");
    let mut total = 0.0;
    for _ in 0..5 {
        total += e.step(c).energy_j;
    }
    let meter = e.energy_meter().read().total();
    assert!((meter - total).abs() < 1e-9);
    assert!(e.now() == 5.0);
}

#[test]
fn zero_load_intervals_are_quiet() {
    let mut e = engine(0.0, 10);
    let s = e.step(cfg("1S-0.65"));
    assert_eq!(s.arrivals, 0);
    assert_eq!(s.completions, 0);
    assert_eq!(s.tail_latency_s, 0.0);
    // Power is just statics + rest of system.
    assert!(s.power.total() < 1.2);
}

#[test]
#[should_panic(expected = "at least one core")]
fn zero_core_config_rejected() {
    let mut e = engine(0.5, 11);
    let lc = CoreConfig::new(0, 0, Frequency::from_mhz(600), Frequency::from_mhz(650));
    e.step(MachineConfig::interactive(&Platform::juno_r1(), lc));
}

#[test]
fn migrated_cores_counted() {
    let mut e = engine(0.3, 12);
    e.step(cfg("2B-1.15"));
    let s = e.step(cfg("2B2S-0.90"));
    assert_eq!(s.migrated_cores, 2); // +2 small cores
    let s = e.step(cfg("2B2S-0.60"));
    assert_eq!(s.migrated_cores, 0); // DVFS only
    assert_eq!(e.total_migrations(), 2);
}
