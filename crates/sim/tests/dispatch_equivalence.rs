//! Differential property test: the speed-class bitmap [`ServiceNode`] must
//! reproduce the frozen PR 3/4-era free-server max-heap [`HeapNode`] event
//! for event — identical completion streams, timeouts, and bit-identical
//! interval statistics — under arbitrary arrival / advance / preempt /
//! stall / DVFS-reconfigure interleavings, including heterogeneous
//! big/small speed mixes (many speed classes, dispatch ties within each)
//! and timeout churn.
//!
//! This is the PR 5 counterpart of `node_equivalence.rs` (which pins the
//! production node to the pre-PR3 linear-scan [`ReferenceNode`]): here the
//! oracle is the heap-based node the bitmap free lists replaced, so any
//! divergence in class ordering, leading-bit tie-breaking, stalled-bitmap
//! promotion or the arrival fast path is caught directly against the
//! structure it must mimic.

use hipster_platform::{CoreKind, Frequency};
use hipster_sim::reference::HeapNode;
use hipster_sim::{Demand, ServerSpec, ServiceNode};
use proptest::prelude::*;

/// One step of the driving sequence.
#[derive(Debug, Clone)]
enum Op {
    /// Let `dt` pass, processing completions, then submit a request.
    Arrive { dt: f64, work: f64, mem: f64 },
    /// Let `dt` pass, processing completions.
    Advance { dt: f64 },
    /// Preempting reconfiguration to `n` servers with a speed mix drawn
    /// from `mix_seed`, stalled by `stall`.
    Remap { n: usize, mix_seed: u64, stall: f64 },
    /// DVFS-style rescale of the current servers (no count change). With
    /// `uniform`, every server lands on the same speed (one class — the
    /// uniform-rate dispatch path); otherwise each keeps its own.
    Rescale {
        factor: f64,
        stall: f64,
        uniform: bool,
    },
    /// Close the monitoring interval and open the next one.
    Interval,
}

/// A heterogeneous big/small server mix: several distinct speeds (so the
/// class table has many classes) with repeats (so classes have dispatch
/// ties), plus per-server slowdowns that split speed-equal servers into
/// different *effective* classes.
fn specs_for(n: usize, mix_seed: u64) -> Vec<ServerSpec> {
    (0..n)
        .map(|i| {
            let speed = match (mix_seed as usize + i) % 5 {
                0 | 1 => 2.0, // big pair: dispatch ties
                2 => 0.8,     // small
                3 => 4.0,     // boosted big
                _ => 2.0,
            };
            ServerSpec {
                kind: if speed >= 2.0 {
                    CoreKind::Big
                } else {
                    CoreKind::Small
                },
                freq: Frequency::from_mhz(1000),
                speed,
                slowdown: 1.0 + ((mix_seed as usize + i) % 3) as f64 * 0.5,
            }
        })
        .collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..0.4, 0.1f64..4.0, 0.0f64..0.5).prop_map(|(dt, work, mem)| Op::Arrive {
            dt,
            work,
            mem
        }),
        (0.0f64..0.4, 1.0f64..4.0, 0.0f64..0.25).prop_map(|(dt, work, mem)| Op::Arrive {
            dt,
            work,
            mem
        }),
        (0.0f64..1.0).prop_map(|dt| Op::Advance { dt }),
        (1usize..9, 0u64..10, 0.0f64..0.3).prop_map(|(n, mix_seed, stall)| Op::Remap {
            n,
            mix_seed,
            stall
        }),
        (0.5f64..2.0, 0.0f64..0.1, any::<bool>()).prop_map(|(factor, stall, uniform)| {
            Op::Rescale {
                factor,
                stall,
                uniform,
            }
        }),
        Just(Op::Interval),
    ]
}

/// Applies `ops` to both implementations in lock-step, asserting identical
/// observable behaviour after every step.
fn run_differential(ops: &[Op], timeout: Option<f64>) {
    let mut bitmap = ServiceNode::new();
    let mut heap = HeapNode::new();
    bitmap.set_timeout(timeout);
    heap.set_timeout(timeout);
    let initial = specs_for(3, 1);
    let mut current_specs = initial.clone();
    bitmap.reconfigure(0.0, &initial, true, 0.0);
    heap.reconfigure(0.0, &initial, true, 0.0);
    bitmap.begin_interval(0.0);
    heap.begin_interval(0.0);

    let mut now = 0.0f64;
    let mut interval_start = 0.0f64;
    // Pending kick from the last stalled reconfiguration: delivered (like
    // the engine's event loop) before the first later event, so arrivals
    // and advances land *inside* the stall window and exercise the
    // demote/promote paths.
    let mut kick_at: Option<f64> = None;
    let mut bitmap_done = Vec::new();
    let mut heap_done = Vec::new();
    let deliver_kick =
        |bitmap: &mut ServiceNode, heap: &mut HeapNode, kick_at: &mut Option<f64>, t: f64| {
            if let Some(k) = *kick_at {
                if k <= t {
                    bitmap.kick(k);
                    heap.kick(k);
                    *kick_at = None;
                }
            }
        };
    for op in ops {
        match *op {
            Op::Arrive { dt, work, mem } => {
                now += dt;
                deliver_kick(&mut bitmap, &mut heap, &mut kick_at, now);
                bitmap_done.clear();
                heap_done.clear();
                bitmap.advance_collect(now, &mut bitmap_done);
                heap.advance_collect(now, &mut heap_done);
                assert_eq!(bitmap_done, heap_done, "completion streams diverged");
                let d = Demand::new(work, mem);
                bitmap.arrive(now, d);
                heap.arrive(now, d);
            }
            Op::Advance { dt } => {
                now += dt;
                deliver_kick(&mut bitmap, &mut heap, &mut kick_at, now);
                bitmap_done.clear();
                heap_done.clear();
                bitmap.advance_collect(now, &mut bitmap_done);
                heap.advance_collect(now, &mut heap_done);
                assert_eq!(bitmap_done, heap_done, "completion streams diverged");
            }
            Op::Remap { n, mix_seed, stall } => {
                current_specs = specs_for(n, mix_seed);
                bitmap.reconfigure(now, &current_specs, true, stall);
                heap.reconfigure(now, &current_specs, true, stall);
                kick_at = if stall > 0.0 { Some(now + stall) } else { None };
            }
            Op::Rescale {
                factor,
                stall,
                uniform,
            } => {
                for s in &mut current_specs {
                    if uniform {
                        s.speed = 2.0 * factor;
                        s.slowdown = 1.0;
                    } else {
                        s.speed *= factor;
                    }
                }
                bitmap.reconfigure(now, &current_specs, false, stall);
                heap.reconfigure(now, &current_specs, false, stall);
                kick_at = if stall > 0.0 { Some(now + stall) } else { None };
            }
            Op::Interval => {
                now = now.max(interval_start + 1e-6);
                deliver_kick(&mut bitmap, &mut heap, &mut kick_at, now);
                let a = bitmap.end_interval(now, 0.95);
                let b = heap.end_interval(now, 0.95);
                assert_eq!(a, b, "interval stats diverged");
                interval_start = now;
                bitmap.begin_interval(now);
                heap.begin_interval(now);
            }
        }
        assert_eq!(bitmap.queue_len(), heap.queue_len(), "queue len diverged");
        assert_eq!(bitmap.in_flight(), heap.in_flight(), "in-flight diverged");
        assert_eq!(
            bitmap.next_completion(),
            heap.next_completion(),
            "next completion diverged"
        );
        assert_eq!(bitmap.total_completed(), heap.total_completed());
    }
    // Drain both and compare the final interval.
    now += 1000.0;
    deliver_kick(&mut bitmap, &mut heap, &mut kick_at, now);
    bitmap_done.clear();
    heap_done.clear();
    bitmap.advance_collect(now, &mut bitmap_done);
    heap.advance_collect(now, &mut heap_done);
    assert_eq!(bitmap_done, heap_done, "drain streams diverged");
    let a = bitmap.end_interval(now, 0.95);
    let b = heap.end_interval(now, 0.95);
    assert_eq!(a, b, "final interval stats diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitmap_node_matches_heap_node(
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        run_differential(&ops, None);
    }

    #[test]
    fn bitmap_node_matches_heap_node_with_timeouts(
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        // A short client deadline relative to the op time scale, so the
        // dispatch-side shedding path runs constantly.
        run_differential(&ops, Some(0.75));
    }
}
