//! Cross-crate integration tests: full platform × simulator × workload ×
//! policy stacks.

use hipster::workloads::{spec, LcWorkload};
use hipster::{
    Constant, CoreConfig, Diurnal, Engine, Frequency, Hipster, LcModel, MachineConfig, Manager,
    OctopusMan, Platform, PlatformBuilder, PolicySummary, QosTarget, StaticPolicy,
};

#[test]
fn full_stack_hipster_in_on_juno() {
    let platform = Platform::juno_r1();
    let qos = hipster::web_search().qos();
    let policy = Hipster::interactive(&platform, 5)
        .learning_intervals(100)
        .build();
    let engine = Engine::new(
        platform,
        Box::new(hipster::web_search()),
        Box::new(Diurnal::paper()),
        5,
    );
    let trace = Manager::new(engine, Box::new(policy)).run(300);
    let s = PolicySummary::from_trace("HipsterIn", &trace, qos);
    assert_eq!(trace.len(), 300);
    assert!(s.qos_guarantee_pct > 70.0, "{}", s.qos_guarantee_pct);
    assert!(s.total_energy_j > 0.0);
}

#[test]
fn hipster_co_runs_batch_and_reads_counters() {
    let platform = Platform::juno_r1();
    let program = spec::program("calculix").unwrap();
    let (b, s) = spec::max_ips(&program);
    let policy = Hipster::collocated(&platform, b + s, 6)
        .learning_intervals(50)
        .build();
    let engine = Engine::new(
        platform,
        Box::new(hipster::web_search()),
        Box::new(Constant::new(0.3, 200.0)),
        6,
    )
    .with_batch_pool(vec![Box::new(program)]);
    let trace = Manager::new(engine, Box::new(policy)).collocated().run(200);
    // Batch instructions must flow whenever the LC workload leaves cores
    // free.
    assert!(trace.mean_batch_ips() > 1.0e8, "{}", trace.mean_batch_ips());
}

#[test]
fn collocation_boosts_other_cluster_at_max_dvfs() {
    let platform = Platform::juno_r1();
    let lc: CoreConfig = "3S-0.65".parse().unwrap();
    let cfg = MachineConfig::collocated(&platform, lc);
    assert_eq!(cfg.big_freq, Frequency::from_mhz(1150));
    assert!(cfg.batch_enabled);
    let lc2: CoreConfig = "2B-0.90".parse().unwrap();
    let cfg2 = MachineConfig::collocated(&platform, lc2);
    // LC on big only → small cluster at its (single) max point.
    assert_eq!(cfg2.small_freq, Frequency::from_mhz(650));
    assert_eq!(cfg2.big_freq, Frequency::from_mhz(900));
}

#[test]
fn perf_quirk_with_mitigation_end_to_end() {
    let platform = Platform::juno_r1();
    let program = spec::program("povray").unwrap();
    let mut engine = Engine::new(
        platform.clone(),
        Box::new(hipster::web_search()),
        Box::new(Constant::new(0.1, 100.0)),
        7,
    )
    .with_batch_pool(vec![Box::new(program)])
    .with_perf_quirk(true);
    // Without the mitigation, low load ⇒ idle stretches ⇒ garbage windows.
    let lc: CoreConfig = "2S-0.65".parse().unwrap();
    let cfg = MachineConfig::collocated(&platform, lc);
    let s = engine.step(cfg);
    assert!(!s.counters_valid);
    // Paper's mitigation: disable cpuidle. Counters clean, power higher.
    // Single intervals are noisy at 10% load, so compare window means.
    let mean_power = |e: &mut Engine| {
        let n = 25;
        (0..n).map(|_| e.step(cfg).power.total()).sum::<f64>() / f64::from(n)
    };
    let p_before = mean_power(&mut engine);
    engine.disable_cpuidle();
    let s2 = engine.step(cfg);
    assert!(s2.counters_valid);
    let p_after = mean_power(&mut engine);
    assert!(
        p_after > p_before,
        "cpuidle off must burn more idle power: {p_after} vs {p_before}"
    );
}

#[test]
fn octopus_man_never_mixes_clusters_end_to_end() {
    let platform = Platform::juno_r1();
    let engine = Engine::new(
        platform.clone(),
        Box::new(hipster::memcached()),
        Box::new(Diurnal::paper()),
        8,
    );
    let trace = Manager::new(engine, Box::new(OctopusMan::with_defaults(&platform))).run(120);
    for s in trace.intervals() {
        assert!(
            s.config.lc.single_core_type().is_some(),
            "Octopus-Man produced mixed config {}",
            s.config.lc
        );
    }
}

#[test]
fn custom_platform_full_stack() {
    let platform = PlatformBuilder::new("test-2B2S")
        .big_cores(2, 2.0, &[(1000, 0.9), (2000, 1.0)], 1024)
        .small_cores(2, 1.0, &[(1000, 1.0)], 512)
        .build()
        .unwrap();
    let workload = LcWorkload::builder("svc")
        .max_load_rps(1000.0)
        .qos(QosTarget::new(0.95, 0.02))
        .work(1000.0, 0.5)
        .big_speed(1.0e6, Frequency::from_mhz(2000))
        .small_ipc_penalty(2.0)
        .build();
    let qos = workload.qos();
    let policy = Hipster::interactive(&platform, 9)
        .learning_intervals(30)
        .build();
    let engine = Engine::new(
        platform,
        Box::new(workload),
        Box::new(Constant::new(0.5, 100.0)),
        9,
    );
    let trace = Manager::new(engine, Box::new(policy)).run(100);
    assert!(trace.qos_guarantee_pct(qos) > 60.0);
}

#[test]
fn static_small_cannot_hold_peak_load() {
    let platform = Platform::juno_r1();
    let qos = hipster::memcached().qos();
    let engine = Engine::new(
        platform.clone(),
        Box::new(hipster::memcached()),
        Box::new(Constant::new(0.95, 60.0)),
        10,
    );
    let trace = Manager::new(engine, Box::new(StaticPolicy::all_small(&platform))).run(60);
    assert!(
        trace.qos_guarantee_pct(qos) < 50.0,
        "4 small cores cannot serve 95% load: {}",
        trace.qos_guarantee_pct(qos)
    );
}

#[test]
fn trace_csv_is_parseable() {
    let platform = Platform::juno_r1();
    let engine = Engine::new(
        platform.clone(),
        Box::new(hipster::web_search()),
        Box::new(Constant::new(0.4, 20.0)),
        11,
    );
    let trace = Manager::new(engine, Box::new(StaticPolicy::all_big(&platform))).run(20);
    let csv = trace.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 21);
    let cols = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
    }
}
