//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use hipster::core::{LoadBuckets, QTable};
use hipster::platform::{power_ladder, stress_power, CoreConfig, CoreKind, Frequency, Platform};
use hipster::sim::dist::{BoundedPareto, Exponential, LogNormal, Zipf};
use hipster::sim::{percentile, P2Quantile, Sampler, SimRng};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CoreConfig> {
    (
        0usize..=2,
        0usize..=4,
        prop_oneof![Just(600u32), Just(900), Just(1150)],
    )
        .prop_filter_map("non-empty config", |(nb, ns, mhz)| {
            if nb + ns == 0 {
                None
            } else {
                Some(CoreConfig::new(
                    nb,
                    ns,
                    Frequency::from_mhz(mhz),
                    Frequency::from_mhz(650),
                ))
            }
        })
}

proptest! {
    #[test]
    fn config_label_round_trips(cfg in arb_config()) {
        let label = cfg.to_string();
        let parsed: CoreConfig = label.parse().unwrap();
        prop_assert_eq!(parsed.to_string(), label);
        prop_assert_eq!(parsed.n_big, cfg.n_big);
        prop_assert_eq!(parsed.n_small, cfg.n_small);
        // The label frequency always survives the round trip.
        prop_assert_eq!(parsed.label_freq(), cfg.label_freq());
    }

    #[test]
    fn percentile_lies_within_sample_range(
        mut xs in prop::collection::vec(0.0f64..1e6, 1..300),
        p in 0.0f64..=1.0,
    ) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let v = percentile(&mut xs, p).unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn percentile_monotone_in_p(
        mut xs in prop::collection::vec(0.0f64..1e6, 2..200),
        p1 in 0.0f64..=1.0,
        p2 in 0.0f64..=1.0,
    ) {
        let (lo_p, hi_p) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&mut xs, lo_p).unwrap();
        let b = percentile(&mut xs, hi_p).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn p2_estimator_stays_within_range(seed in 0u64..1000, p in 0.05f64..0.95) {
        let mut rng = SimRng::seed(seed);
        let mut est = P2Quantile::new(p);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..500 {
            let x = rng.uniform() * 100.0;
            lo = lo.min(x);
            hi = hi.max(x);
            est.observe(x);
        }
        let q = est.quantile().unwrap();
        prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9, "q={q} outside [{lo},{hi}]");
    }

    #[test]
    fn buckets_are_monotone_and_invertible(
        width in 0.01f64..0.5,
        load in 0.0f64..1.0,
    ) {
        let b = LoadBuckets::new(width);
        let w = b.bucket(load);
        prop_assert!((w as usize) < b.num_buckets());
        // The bucket of the bucket centre is the bucket itself.
        prop_assert_eq!(b.bucket(b.center(w)), w);
        // Monotonicity against a nudge upward.
        prop_assert!(b.bucket((load + 0.05).min(1.0)) >= w);
    }

    #[test]
    fn stress_power_monotone_in_cores(cfg in arb_config()) {
        let platform = Platform::juno_r1();
        let power = stress_power(&platform, &cfg);
        // Adding a small core never reduces stress power.
        if cfg.n_small < 4 {
            let bigger = CoreConfig::new(cfg.n_big, cfg.n_small + 1, cfg.big_freq, cfg.small_freq);
            prop_assert!(stress_power(&platform, &bigger) >= power - 1e-12);
        }
        // Power is bounded by TDP.
        prop_assert!(power <= platform.power_model().tdp(&platform) + 1e-9);
    }

    #[test]
    fn qtable_update_is_bounded_fixed_point(
        reward in -10.0f64..10.0,
        alpha in 0.01f64..1.0,
        n in 1usize..100,
    ) {
        // Repeated updates with the same reward and no future value
        // converge toward the reward without overshooting.
        let mut t = QTable::new();
        let cfg: CoreConfig = "2B-1.15".parse().unwrap();
        let actions = [cfg];
        for _ in 0..n {
            t.update(0, cfg, reward, 1, &[], alpha, 0.9);
        }
        let v = t.get(0, &cfg);
        prop_assert!(v.abs() <= reward.abs() + 1e-9, "v={v} reward={reward}");
        prop_assert!(v * reward >= 0.0, "sign must match");
        let _ = actions;
    }

    #[test]
    fn qtable_best_action_returns_member(
        values in prop::collection::vec(-5.0f64..5.0, 1..20),
    ) {
        let platform = Platform::juno_r1();
        let ladder = power_ladder(&platform);
        let actions: Vec<CoreConfig> = ladder.into_iter().take(values.len()).collect();
        let mut t = QTable::new();
        for (c, v) in actions.iter().zip(values.iter()) {
            t.update(3, *c, *v, 3, &[], 1.0, 0.0);
        }
        let best = t.best_action(3, &actions).unwrap();
        prop_assert!(actions.contains(&best));
        // Its value is maximal.
        let vb = t.get(3, &best);
        for c in &actions {
            prop_assert!(vb >= t.get(3, c) - 1e-12);
        }
    }

    #[test]
    fn exponential_samples_nonnegative(rate in 0.001f64..1e6, seed in 0u64..500) {
        let d = Exponential::new(rate);
        let mut rng = SimRng::seed(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_samples_positive(median in 0.001f64..1e4, sigma in 0.0f64..3.0, seed in 0u64..500) {
        let d = LogNormal::from_median(median, sigma);
        let mut rng = SimRng::seed(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds(
        lo in 0.01f64..10.0,
        span in 0.1f64..100.0,
        alpha in 0.2f64..4.0,
        seed in 0u64..500,
    ) {
        let hi = lo + span;
        let d = BoundedPareto::new(lo, hi, alpha);
        let mut rng = SimRng::seed(seed);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9, "{x} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn zipf_ranks_in_range(n in 1usize..5000, s in 0.0f64..3.0, seed in 0u64..500) {
        let d = Zipf::new(n, s);
        let mut rng = SimRng::seed(seed);
        for _ in 0..20 {
            let r = d.sample_rank(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    #[test]
    fn power_ladder_is_sorted_for_any_platform_subset(k in 1usize..34) {
        let platform = Platform::juno_r1();
        let ladder = power_ladder(&platform);
        let subset: Vec<CoreConfig> = ladder.into_iter().take(k).collect();
        for w in subset.windows(2) {
            prop_assert!(
                stress_power(&platform, &w[0]) <= stress_power(&platform, &w[1]) + 1e-12
            );
        }
    }

    #[test]
    fn service_speed_scales_linearly(mhz in 300u32..3000) {
        use hipster::sim::LcModel as _;
        let w = hipster::memcached();
        let f = Frequency::from_mhz(mhz);
        let base = w.service_speed(CoreKind::Big, Frequency::from_mhz(1150));
        let scaled = w.service_speed(CoreKind::Big, f);
        let expect = base * f64::from(mhz) / 1150.0;
        prop_assert!((scaled - expect).abs() < 1e-6 * expect.max(1.0));
    }
}
