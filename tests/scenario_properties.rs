//! Property tests for `ScenarioSpec` validation: malformed scenarios are
//! rejected with typed errors — construction and validation never panic.

use hipster::workloads::memcached;
use hipster::{
    Constant, EngineSpecError, Fleet, FleetError, Platform, Policy, ScenarioError, ScenarioSpec,
    StaticPolicy,
};
use proptest::prelude::*;

/// A structurally complete scenario whose numeric knobs come from the
/// property inputs.
fn spec(intervals: usize, jitter: f64, interval_s: f64) -> ScenarioSpec {
    ScenarioSpec::new("prop", Platform::juno_r1())
        .workload_with(|| Box::new(memcached()))
        .load(Constant::new(0.3, 10.0))
        .policy(|p: &Platform, _| Box::new(StaticPolicy::all_big(p)) as Box<dyn Policy>)
        .intervals(intervals)
        .seed(1)
        .jitter(jitter)
        .interval_s(interval_s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Validation classifies every input as Ok or a typed error and never
    /// panics, across the whole knob space (including NaN and negatives).
    #[test]
    fn validation_total_over_knob_space(
        intervals in 0usize..4,
        jitter in prop_oneof![
            Just(f64::NAN),
            Just(-1.0f64),
            Just(f64::INFINITY),
            -0.5f64..0.5
        ],
        interval_s in prop_oneof![
            Just(f64::NAN),
            Just(0.0f64),
            Just(-2.0f64),
            0.001f64..10.0
        ],
    ) {
        let s = spec(intervals, jitter, interval_s);
        match s.validate() {
            Ok(()) => {
                prop_assert!(intervals > 0);
                prop_assert!(jitter.is_finite() && jitter >= 0.0);
                prop_assert!(interval_s.is_finite() && interval_s > 0.0);
            }
            Err(ScenarioError::ZeroIntervals) => prop_assert_eq!(intervals, 0),
            Err(ScenarioError::Engine(EngineSpecError::InvalidJitter { sigma })) => {
                prop_assert!(!(sigma.is_finite() && sigma >= 0.0));
            }
            Err(ScenarioError::Engine(EngineSpecError::NonPositiveInterval { seconds })) => {
                prop_assert!(!(seconds.is_finite() && seconds > 0.0));
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Zero intervals are always rejected, regardless of the other knobs.
    #[test]
    fn zero_intervals_always_rejected(seed in proptest::arbitrary::any::<u64>()) {
        let s = spec(0, 0.1, 1.0).seed(seed);
        prop_assert_eq!(s.validate(), Err(ScenarioError::ZeroIntervals));
        prop_assert!(matches!(s.run(), Err(ScenarioError::ZeroIntervals)));
    }

    /// Inconsistent collocation settings are rejected both ways: enabling
    /// collocation without batch programs, and supplying batch programs
    /// without enabling collocation.
    #[test]
    fn inconsistent_collocation_rejected(collocate in proptest::arbitrary::any::<bool>()) {
        #[derive(Debug, Clone)]
        struct FixedIps;
        impl hipster::sim::BatchProgram for FixedIps {
            fn name(&self) -> &str {
                "fixed"
            }
            fn ips(
                &self,
                _kind: hipster::CoreKind,
                _freq: hipster::Frequency,
            ) -> f64 {
                1.0e9
            }
        }
        let s = spec(5, 0.1, 1.0);
        let (s, expected) = if collocate {
            (s.collocated(), ScenarioError::CollocationWithoutBatch)
        } else {
            (
                s.batch_with(|| Box::new(FixedIps)),
                ScenarioError::BatchWithoutCollocation,
            )
        };
        prop_assert_eq!(s.validate(), Err(expected));
    }

    /// An incomplete spec reports exactly which piece is missing.
    #[test]
    fn missing_pieces_reported(which in 0u8..3) {
        let s = ScenarioSpec::new("partial", Platform::juno_r1());
        let s = match which {
            0 => s,
            1 => s.workload_with(|| Box::new(memcached())),
            _ => s
                .workload_with(|| Box::new(memcached()))
                .load(Constant::new(0.3, 10.0)),
        };
        let expected = match which {
            0 => ScenarioError::MissingWorkload,
            1 => ScenarioError::MissingLoad,
            _ => ScenarioError::MissingPolicy,
        };
        prop_assert_eq!(s.intervals(5).validate(), Err(expected));
    }
}

#[test]
fn empty_fleet_is_typed_error_not_panic() {
    match Fleet::new().run() {
        Err(FleetError::Empty) => {}
        other => panic!("expected FleetError::Empty, got {other:?}"),
    }
}

#[test]
fn fleet_reports_invalid_member_without_running() {
    let fleet = Fleet::new()
        .scenario(spec(5, 0.1, 1.0))
        .scenario(spec(0, 0.1, 1.0));
    match fleet.run() {
        Err(FleetError::InvalidScenario {
            index: 1, error, ..
        }) => {
            assert_eq!(error, ScenarioError::ZeroIntervals);
        }
        other => panic!("expected InvalidScenario, got {other:?}"),
    }
}
