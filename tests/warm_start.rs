//! Warm-start workflow: learn a table in one run, serialize it, reload it
//! in a fresh process/policy, and keep managing without a learning phase.

use hipster::core::QTable;
use hipster::workloads::web_search;
use hipster::{Constant, Diurnal, Engine, Hipster, LcModel, Manager, Platform};

fn engine(seed: u64, pattern_diurnal: bool) -> Engine {
    let platform = Platform::juno_r1();
    if pattern_diurnal {
        Engine::new(
            platform,
            Box::new(web_search()),
            Box::new(Diurnal::paper()),
            seed,
        )
    } else {
        Engine::new(
            platform,
            Box::new(web_search()),
            Box::new(Constant::new(0.45, 400.0)),
            seed,
        )
    }
}

#[test]
fn table_survives_serialization_and_reuse() {
    let platform = Platform::juno_r1();

    // Run 1: learn.
    let policy = Hipster::interactive(&platform, 33)
        .learning_intervals(150)
        .bucket_width(0.06)
        .build();
    let mut mgr = Manager::new(engine(33, true), Box::new(policy));
    let _ = mgr.run(400);

    // The Manager owns the policy; in a real deployment the table would be
    // dumped on shutdown. Reconstruct the flow with a fresh learn to grab
    // the table directly.
    let mut policy = Hipster::interactive(&platform, 33)
        .learning_intervals(150)
        .bucket_width(0.06)
        .build();
    {
        let mut mgr = ManagerProbe::new(engine(33, true));
        for _ in 0..400 {
            mgr.step(&mut policy);
        }
    }
    let tsv = policy.qtable().to_tsv();
    assert!(policy.qtable().len() > 10, "table should be populated");

    // Run 2: reload and exploit immediately — no learning phase.
    let reloaded = QTable::from_tsv(&tsv).expect("valid tsv");
    let warm = Hipster::interactive(&platform, 34)
        .bucket_width(0.06)
        .warm_start(reloaded)
        .build();
    assert_eq!(warm.phase(), hipster::core::Phase::Exploitation);

    let qos = web_search().qos();
    let trace = Manager::new(engine(99, false), Box::new(warm)).run(150);
    let g = trace.qos_guarantee_pct(qos);
    assert!(g > 85.0, "warm-started policy guarantee {g}");
}

/// Minimal driver that keeps ownership of the policy (unlike `Manager`,
/// which boxes it) so the test can extract the learned table.
struct ManagerProbe {
    engine: Engine,
    last: Option<hipster::IntervalStats>,
}

impl ManagerProbe {
    fn new(engine: Engine) -> Self {
        ManagerProbe { engine, last: None }
    }

    fn step(&mut self, policy: &mut hipster::Hipster) {
        use hipster::Policy as _;
        let qos = self.engine.lc_model().qos();
        let obs = match &self.last {
            None => hipster::Observation::startup(qos),
            Some(s) => hipster::Observation {
                load_frac: s.offered_load_frac,
                tail_latency_s: s.tail_latency_s,
                qos,
                power_w: s.power.total(),
                batch_ips_big: s.batch_ips_big,
                batch_ips_small: s.batch_ips_small,
                counters_valid: s.counters_valid,
                has_batch: false,
            },
        };
        let lc = policy.decide(&obs);
        let cfg = hipster::MachineConfig::interactive(self.engine.platform(), lc);
        self.last = Some(self.engine.step(cfg));
    }
}
