//! Determinism regression: the same `ScenarioSpec` produces byte-identical
//! traces whether it runs serially or through a multi-threaded `Fleet`.

use hipster::workloads::web_search;
use hipster::{Diurnal, Fleet, Hipster, Platform, Policy, ScenarioSpec};
use hipster_core::Zones;

/// One scenario, reconstructed identically on every call (specs are
/// single-use: they own their telemetry sinks).
fn spec() -> ScenarioSpec {
    ScenarioSpec::new("determinism", Platform::juno_r1())
        .workload_with(|| Box::new(web_search()))
        .load(Diurnal::paper())
        .policy(|p: &Platform, seed| {
            Box::new(
                Hipster::interactive(p, seed)
                    .learning_intervals(40)
                    .zones(Zones::new(0.85, 0.35))
                    .bucket_width(0.06)
                    .build(),
            ) as Box<dyn Policy>
        })
        .intervals(120)
        .seed(9)
}

#[test]
fn serial_and_fleet_runs_are_byte_identical() {
    let serial = spec().run().expect("valid scenario");
    let serial_csv = serial.trace.to_csv();
    let serial_jsonl: Vec<String> = serial
        .trace
        .intervals()
        .iter()
        .map(hipster::interval_to_jsonl)
        .collect();

    // Four copies of the same spec across four worker threads: every copy
    // must reproduce the serial run exactly, regardless of scheduling.
    let fleet: Fleet = (0..4).map(|_| spec()).collect();
    let outcomes = fleet.threads(4).run().expect("valid fleet");
    assert_eq!(outcomes.len(), 4);
    for outcome in &outcomes {
        assert_eq!(outcome.seed, serial.seed);
        assert_eq!(
            outcome.trace.to_csv().into_bytes(),
            serial_csv.clone().into_bytes()
        );
        let jsonl: Vec<String> = outcome
            .trace
            .intervals()
            .iter()
            .map(hipster::interval_to_jsonl)
            .collect();
        assert_eq!(jsonl, serial_jsonl);
    }
}

#[test]
fn fleet_split_seeds_reproduce_across_runs() {
    let run = |threads: usize| {
        let fleet: Fleet = (0..3).map(|_| spec_unseeded()).collect();
        fleet
            .threads(threads)
            .base_seed(77)
            .run()
            .expect("valid fleet")
    };
    let a = run(1);
    let b = run(3);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.trace.to_csv(), y.trace.to_csv());
    }
    // Different indices → different split seeds → different traces.
    assert_ne!(a[0].seed, a[1].seed);
    assert_ne!(a[0].trace.to_csv(), a[1].trace.to_csv());
}

fn spec_unseeded() -> ScenarioSpec {
    ScenarioSpec::new("unseeded", Platform::juno_r1())
        .workload_with(|| Box::new(web_search()))
        .load(Diurnal::paper())
        .policy(|p: &Platform, seed| {
            Box::new(Hipster::interactive(p, seed).learning_intervals(20).build())
                as Box<dyn Policy>
        })
        .intervals(60)
}
