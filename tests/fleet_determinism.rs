//! Determinism regression: the same `ScenarioSpec` produces byte-identical
//! traces whether it runs serially, through the multi-threaded
//! work-stealing `Fleet`, or through the static-partition baseline
//! scheduler (`hipster::core::reference::run_static_chunked`).

use hipster::workloads::{memcached, web_search};
use hipster::{Diurnal, Fleet, Hipster, OctopusMan, Platform, Policy, Ramp, ScenarioSpec};
use hipster_core::{reference, HeuristicMapper, StaticPolicy, Zones};

/// One scenario, reconstructed identically on every call (specs are
/// single-use: they own their telemetry sinks).
fn spec() -> ScenarioSpec {
    ScenarioSpec::new("determinism", Platform::juno_r1())
        .workload_with(|| Box::new(web_search()))
        .load(Diurnal::paper())
        .policy(|p: &Platform, seed| {
            Box::new(
                Hipster::interactive(p, seed)
                    .learning_intervals(40)
                    .zones(Zones::new(0.85, 0.35))
                    .bucket_width(0.06)
                    .build(),
            ) as Box<dyn Policy>
        })
        .intervals(120)
        .seed(9)
}

#[test]
fn serial_and_fleet_runs_are_byte_identical() {
    let serial = spec().run().expect("valid scenario");
    let serial_csv = serial.trace.to_csv();
    let serial_jsonl: Vec<String> = serial
        .trace
        .intervals()
        .iter()
        .map(hipster::interval_to_jsonl)
        .collect();

    // Four copies of the same spec across four worker threads: every copy
    // must reproduce the serial run exactly, regardless of scheduling.
    let fleet: Fleet = (0..4).map(|_| spec()).collect();
    let outcomes = fleet.threads(4).run().expect("valid fleet");
    assert_eq!(outcomes.len(), 4);
    for outcome in &outcomes {
        assert_eq!(outcome.seed, serial.seed);
        assert_eq!(
            outcome.trace.to_csv().into_bytes(),
            serial_csv.clone().into_bytes()
        );
        let jsonl: Vec<String> = outcome
            .trace
            .intervals()
            .iter()
            .map(hipster::interval_to_jsonl)
            .collect();
        assert_eq!(jsonl, serial_jsonl);
    }
}

#[test]
fn fleet_split_seeds_reproduce_across_runs() {
    let run = |threads: usize| {
        let fleet: Fleet = (0..3).map(|_| spec_unseeded()).collect();
        fleet
            .threads(threads)
            .base_seed(77)
            .run()
            .expect("valid fleet")
    };
    let a = run(1);
    let b = run(3);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.trace.to_csv(), y.trace.to_csv());
    }
    // Different indices → different split seeds → different traces.
    assert_ne!(a[0].seed, a[1].seed);
    assert_ne!(a[0].trace.to_csv(), a[1].trace.to_csv());
}

fn spec_unseeded() -> ScenarioSpec {
    ScenarioSpec::new("unseeded", Platform::juno_r1())
        .workload_with(|| Box::new(web_search()))
        .load(Diurnal::paper())
        .policy(|p: &Platform, seed| {
            Box::new(Hipster::interactive(p, seed).learning_intervals(20).build())
                as Box<dyn Policy>
        })
        .intervals(60)
}

/// A shortened fig. 5-shaped fleet — three policies × two workloads under
/// the diurnal load — plus the fig. 8 ramp race, all as one heterogeneous
/// fleet (mixed policies and run lengths, exactly what a scheduler could
/// get wrong).
fn fig5_fig8_fleet() -> Fleet {
    let mut fleet = Fleet::new();
    let zones_mc = Zones::new(0.50, 0.15);
    let zones_ws = Zones::new(0.85, 0.35);
    // fig5-style panels.
    for (workload, zones) in [("memcached", zones_mc), ("web-search", zones_ws)] {
        let lc = move || -> Box<dyn hipster::LcModel> {
            match workload {
                "memcached" => Box::new(memcached()),
                _ => Box::new(web_search()),
            }
        };
        fleet.push(
            ScenarioSpec::new(format!("fig5/{workload}/static"), Platform::juno_r1())
                .workload_with(lc)
                .load(Diurnal::paper())
                .policy(|p: &Platform, _| Box::new(StaticPolicy::all_big(p)) as Box<dyn Policy>)
                .intervals(90)
                .seed(51),
        );
        fleet.push(
            ScenarioSpec::new(format!("fig5/{workload}/octopus"), Platform::juno_r1())
                .workload_with(lc)
                .load(Diurnal::paper())
                .policy(move |p: &Platform, _| {
                    Box::new(OctopusMan::new(p, zones)) as Box<dyn Policy>
                })
                .intervals(120)
                .seed(51),
        );
        fleet.push(
            ScenarioSpec::new(format!("fig5/{workload}/heuristic"), Platform::juno_r1())
                .workload_with(lc)
                .load(Diurnal::paper())
                .policy(move |p: &Platform, _| {
                    Box::new(HeuristicMapper::new(p, zones)) as Box<dyn Policy>
                })
                .intervals(60)
                .seed(51),
        );
    }
    // fig8-style ramp race.
    for (name, learn) in [("hipster", 40u64), ("octopus", 0)] {
        fleet.push(
            ScenarioSpec::new(format!("fig8/{name}"), Platform::juno_r1())
                .workload_with(|| Box::new(memcached()))
                .load(Ramp {
                    from: 0.5,
                    to: 1.0,
                    ramp_s: 100.0,
                })
                .policy(move |p: &Platform, seed| -> Box<dyn Policy> {
                    if learn > 0 {
                        Box::new(
                            Hipster::interactive(p, seed)
                                .learning_intervals(learn)
                                .zones(Zones::new(0.50, 0.15))
                                .bucket_width(0.03)
                                .build(),
                        )
                    } else {
                        Box::new(OctopusMan::new(p, Zones::new(0.50, 0.15)))
                    }
                })
                .intervals(100)
                .seed(71),
        );
    }
    fleet
}

#[test]
fn work_stealing_matches_serial_and_static_chunking_on_fig5_fig8_fleets() {
    // Serial execution (one worker) is the ground truth.
    let serial = fig5_fig8_fleet().threads(1).run().expect("valid fleet");
    let serial_csv: Vec<(String, u64, String)> = serial
        .iter()
        .map(|o| (o.name.clone(), o.seed, o.trace.to_csv()))
        .collect();

    // Work-stealing across 4 workers must reproduce it byte-for-byte.
    let stealing = fig5_fig8_fleet().threads(4).run().expect("valid fleet");
    assert_eq!(stealing.len(), serial_csv.len());
    for (o, (name, seed, csv)) in stealing.iter().zip(serial_csv.iter()) {
        assert_eq!(&o.name, name);
        assert_eq!(&o.seed, seed);
        assert_eq!(
            o.trace.to_csv().into_bytes(),
            csv.clone().into_bytes(),
            "work-stealing diverged on {name}"
        );
    }

    // ... and so must the static-partition baseline scheduler.
    let (chunked, stats) =
        reference::run_static_chunked(fig5_fig8_fleet().threads(4)).expect("valid fleet");
    assert_eq!(stats.workers, 4);
    assert_eq!(chunked.len(), serial_csv.len());
    for (o, (name, seed, csv)) in chunked.iter().zip(serial_csv.iter()) {
        assert_eq!(&o.name, name);
        assert_eq!(&o.seed, seed);
        assert_eq!(
            o.trace.to_csv().into_bytes(),
            csv.clone().into_bytes(),
            "static chunking diverged on {name}"
        );
    }
}

#[test]
fn run_each_streams_the_same_outcomes_as_run() {
    let collected = fig5_fig8_fleet().threads(2).run().expect("valid fleet");
    let mut streamed = Vec::new();
    let stats = fig5_fig8_fleet()
        .threads(2)
        .run_each(|o| streamed.push((o.name.clone(), o.trace.to_csv())))
        .expect("valid fleet");
    assert_eq!(stats.scenarios, collected.len());
    assert_eq!(streamed.len(), collected.len());
    for ((name, csv), o) in streamed.iter().zip(collected.iter()) {
        assert_eq!(name, &o.name);
        assert_eq!(csv, &o.trace.to_csv());
    }
}
