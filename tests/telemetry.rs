//! Telemetry sink round-trips through a real run: the JSON-lines sink's
//! file parses back into the exact trace the run produced, and the CSV
//! sink reproduces `Trace::to_csv` byte for byte.

use hipster::workloads::memcached;
use hipster::{
    interval_from_jsonl, interval_to_jsonl, Constant, CsvSink, Diurnal, Hipster, JsonLinesSink,
    Platform, Policy, ScenarioSpec, SummarySink, TraceSink,
};

fn unique_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hipster-telemetry-{}-{name}", std::process::id()));
    p
}

#[test]
fn jsonl_sink_round_trips_a_real_run() {
    let path = unique_path("roundtrip.jsonl");
    let sink = JsonLinesSink::create(&path).expect("temp file");
    let outcome = ScenarioSpec::new("jsonl-roundtrip", Platform::juno_r1())
        .workload_with(|| Box::new(memcached()))
        .load(Diurnal::paper())
        .policy(|p: &Platform, seed| {
            Box::new(Hipster::interactive(p, seed).learning_intervals(30).build())
                as Box<dyn Policy>
        })
        .intervals(90)
        .seed(4)
        .sink(Box::new(sink))
        .run()
        .expect("valid scenario");

    let text = std::fs::read_to_string(&path).expect("sink wrote the file");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), outcome.trace.len(), "one line per interval");
    for (line, stats) in lines.iter().zip(outcome.trace.intervals()) {
        let parsed = interval_from_jsonl(line).expect("every line parses");
        assert_eq!(&parsed, stats, "parse recovers the exact interval");
        assert_eq!(
            interval_to_jsonl(&parsed),
            *line,
            "re-serialization is byte-identical"
        );
    }
}

#[test]
fn csv_sink_matches_trace_to_csv() {
    let path = unique_path("trace.csv");
    let sink = CsvSink::create(&path).expect("temp file");
    let outcome = ScenarioSpec::new("csv", Platform::juno_r1())
        .workload_with(|| Box::new(memcached()))
        .load(Constant::new(0.5, 40.0))
        .policy(|p: &Platform, _| Box::new(hipster::StaticPolicy::all_big(p)) as Box<dyn Policy>)
        .intervals(40)
        .seed(5)
        .sink(Box::new(sink))
        .run()
        .expect("valid scenario");

    let text = std::fs::read_to_string(&path).expect("sink wrote the file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(text, outcome.trace.to_csv());
}

#[test]
fn trace_and_summary_sinks_agree_with_outcome() {
    let (trace_sink, trace_handle) = TraceSink::new();
    let (summary_sink, summary_handle) = SummarySink::new();
    let outcome = ScenarioSpec::new("handles", Platform::juno_r1())
        .workload_with(|| Box::new(memcached()))
        .load(Constant::new(0.4, 30.0))
        .policy(|p: &Platform, _| Box::new(hipster::StaticPolicy::all_big(p)) as Box<dyn Policy>)
        .intervals(30)
        .seed(6)
        .sink(Box::new(trace_sink))
        .sink(Box::new(summary_sink))
        .run()
        .expect("valid scenario");

    assert_eq!(trace_handle.take().to_csv(), outcome.trace.to_csv());
    let summary = summary_handle.take().expect("summary after run");
    assert_eq!(summary.total_energy_j, outcome.summary.total_energy_j);
    assert_eq!(summary.qos_guarantee_pct, outcome.summary.qos_guarantee_pct);
}
