//! Facade smoke test: the re-exports the README and docs promise must
//! resolve from the crate root, and a minimal end-to-end policy run must
//! complete.

use hipster::{
    Constant, Engine, Hipster, LcModel, Manager, OctopusMan, Platform, Policy, PolicySummary,
    StaticPolicy,
};

/// The names the facade re-exports at the crate root (and the `web_search`
/// constructor) must all resolve. Mostly a compile-time assertion; the
/// bindings below fail to build if a re-export disappears.
#[test]
fn facade_reexports_resolve() {
    // Root re-exports.
    let platform: Platform = Platform::juno_r1();
    let _manager_ctor: fn(Engine, Box<dyn Policy>) -> Manager = Manager::new;
    let _builder = Hipster::interactive(&platform, 1);
    let _ws = hipster::web_search();
    let _mc = hipster::memcached();

    // The four sub-crates are reachable under their module aliases.
    let _ = hipster::platform::Platform::juno_r1();
    let _ = hipster::sim::SimRng::seed(0);
    let _ = hipster::workloads::web_search();
    let _ = hipster::core::QTable::new();

    // And the module path spelling matches the crate-root one.
    assert_eq!(
        hipster::workloads::web_search().name(),
        hipster::web_search().name()
    );
}

/// A short end-to-end run through every layer: platform → engine →
/// workload → policy → manager → trace → summary.
#[test]
fn minimal_end_to_end_policy_run() {
    let platform = Platform::juno_r1();
    let ws = hipster::web_search();
    let qos = ws.qos();

    for policy in [
        Box::new(StaticPolicy::all_big(&platform)) as Box<dyn Policy>,
        Box::new(OctopusMan::with_defaults(&platform)),
        Box::new(
            Hipster::interactive(&platform, 3)
                .learning_intervals(10)
                .build(),
        ),
    ] {
        let engine = Engine::new(
            platform.clone(),
            Box::new(hipster::web_search()),
            Box::new(Constant::new(0.5, 60.0)),
            3,
        );
        let trace = Manager::new(engine, policy).run(30);
        assert_eq!(trace.len(), 30);
        let summary = PolicySummary::from_trace("smoke", &trace, qos);
        assert!((0.0..=100.0).contains(&summary.qos_guarantee_pct));
        assert!(summary.total_energy_j > 0.0);
    }
}
