//! **hipster** — a from-scratch reproduction of *Hipster: Hybrid Task
//! Manager for Latency-Critical Cloud Workloads* (HPCA 2017).
//!
//! This facade crate re-exports the four workspace crates:
//!
//! * [`platform`] — the heterogeneous big.LITTLE platform model (ARM Juno
//!   R1 preset, Table 2-calibrated power model, energy meters, perf
//!   counters);
//! * [`sim`] — the discrete-event queueing simulator (tail latencies,
//!   migration/DVFS costs, batch execution, closed-loop clients);
//! * [`workloads`] — Memcached, Web-Search, SPEC CPU2006 batch models and
//!   diurnal/ramp/spike load generators;
//! * [`core`] — the Hipster task manager itself (heuristic mapper,
//!   Q-learning, HipsterIn/HipsterCo) plus the Octopus-Man and static
//!   baselines.
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! # Quick start
//!
//! ```
//! use hipster::{Diurnal, Engine, Hipster, LcModel, Manager, Platform, PolicySummary};
//! use hipster::workloads::web_search;
//!
//! let platform = Platform::juno_r1();
//! let policy = Hipster::interactive(&platform, 42)
//!     .learning_intervals(60)
//!     .build();
//! let ws = web_search();
//! let qos = ws.qos();
//! let engine = Engine::new(platform, Box::new(ws), Box::new(Diurnal::paper()), 42);
//! let trace = Manager::new(engine, Box::new(policy)).run(120);
//! let summary = PolicySummary::from_trace("HipsterIn", &trace, qos);
//! println!("{:.1}% QoS guarantee", summary.qos_guarantee_pct);
//! ```

#![warn(missing_docs)]

pub use hipster_core as core;
pub use hipster_platform as platform;
pub use hipster_sim as sim;
pub use hipster_workloads as workloads;

pub use hipster_core::{
    HeuristicMapper, Hipster, Manager, Observation, OctopusMan, Policy, PolicySummary, StaticPolicy,
};
pub use hipster_platform::{CoreConfig, CoreKind, Frequency, Platform, PlatformBuilder};
pub use hipster_sim::{Engine, IntervalStats, LcModel, MachineConfig, QosTarget, Trace};
pub use hipster_workloads::{memcached, web_search, Constant, Diurnal, Ramp};
