//! **hipster** — a from-scratch reproduction of *Hipster: Hybrid Task
//! Manager for Latency-Critical Cloud Workloads* (HPCA 2017).
//!
//! This facade crate re-exports the four workspace crates:
//!
//! * [`platform`] — the heterogeneous big.LITTLE platform model (ARM Juno
//!   R1 preset, Table 2-calibrated power model, energy meters, perf
//!   counters);
//! * [`sim`] — the discrete-event queueing simulator (tail latencies,
//!   migration/DVFS costs, batch execution, closed-loop clients);
//! * [`workloads`] — Memcached, Web-Search, SPEC CPU2006 batch models and
//!   diurnal/ramp/spike load generators;
//! * [`core`] — the Hipster task manager itself (heuristic mapper,
//!   Q-learning, HipsterIn/HipsterCo) plus the Octopus-Man and static
//!   baselines.
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! # Quick start: one scenario
//!
//! A [`ScenarioSpec`] declares a complete run — platform, workload, load,
//! policy, duration, seed — validates itself, and wires the
//! `Engine`/[`Manager`] stack for you:
//!
//! ```
//! use hipster::{Diurnal, Hipster, Platform, Policy, ScenarioSpec};
//! use hipster::workloads::web_search;
//!
//! let outcome = ScenarioSpec::new("quickstart", Platform::juno_r1())
//!     .workload_with(|| Box::new(web_search()))
//!     .load(Diurnal::paper())
//!     .policy(|p: &Platform, seed| {
//!         Box::new(Hipster::interactive(p, seed).learning_intervals(60).build())
//!             as Box<dyn Policy>
//!     })
//!     .intervals(120)
//!     .seed(42)
//!     .run()
//!     .expect("valid scenario");
//! println!("{:.1}% QoS guarantee", outcome.summary.qos_guarantee_pct);
//! ```
//!
//! # Scaling out: a fleet
//!
//! A [`Fleet`] executes many scenarios across OS threads (one simulated
//! machine each) with per-scenario split seeds and deterministically
//! ordered results; [`TelemetrySink`]s tap per-interval statistics without
//! touching the driver (see `examples/fleet.rs`).
//!
//! # Surviving crashes: durable sweeps
//!
//! [`Fleet::resume`] runs a sweep against a [`SweepStore`] — an
//! append-only, fsync'd journal ([`FileStore`] on disk, [`MemStore`] in
//! memory). Kill the process at any cell and call `resume` again with the
//! same store: completed cells restore byte-identically, only the
//! remainder re-run, and panicking cells can be quarantined instead of
//! poisoning the sweep ([`PanicPolicy`]; see `examples/resume.rs`).
//!
//! # Scaling further: a cluster
//!
//! A [`ClusterSpec`] declares N nodes — each its own engine, policy and
//! split seed — behind an O(1) load-balancing dispatcher
//! ([`DispatchPolicy`]), with optional burst overflow to priced cloud
//! nodes past an occupancy watermark ([`OverflowSpec`]); the resulting
//! [`ClusterSim`](core::ClusterSim) accumulates cluster-wide p95/p99,
//! energy and dollar cost per interval (see `examples/cluster.rs`).

#![warn(missing_docs)]

pub use hipster_core as core;
pub use hipster_platform as platform;
pub use hipster_sim as sim;
pub use hipster_workloads as workloads;

pub use hipster_core::{
    run_tasks, split_seed, AdmissionSpec, BatchDeadline, CellJournal, ClusterError, ClusterOutcome,
    ClusterSpec, ClusterSummary, ConfigSpace, CsvSink, DispatchPolicy, FileStore, Fleet,
    FleetError, FleetStats, HeuristicMapper, Hipster, JsonLinesSink, Manager, MemStore,
    Observation, OctopusMan, OverflowSpec, PanicPolicy, Policy, PolicyFactory, PolicySummary,
    QuarantineRecord, RetrySpec, RunMeta, ScenarioError, ScenarioOutcome, ScenarioSpec, SinkHandle,
    StaticPolicy, StoreError, SummarySink, SweepRecord, SweepStore, TelemetrySink, TraceSink,
};
pub use hipster_platform::{CoreConfig, CoreKind, Frequency, Platform, PlatformBuilder};
pub use hipster_sim::{
    interval_from_jsonl, interval_to_jsonl, DomainFaultSpec, Engine, EngineSpec, EngineSpecError,
    FaultPlan, FaultSpec, FaultSpecError, FaultState, HedgeSpec, IntervalStats, LcModel,
    MachineConfig, QosTarget, TopologySpec, Trace, WavePlan,
};
pub use hipster_workloads::{
    domain_fault_preset, fault_preset, load_preset, memcached, memcached_bursty,
    memcached_revocable, memcached_straggler, memcached_zonewave, preset, web_search, Constant,
    Diurnal, MmppLoad, Ramp,
};
