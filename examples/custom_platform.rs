//! Beyond the Juno: build a custom big.LITTLE server with
//! [`PlatformBuilder`] and a custom latency-critical service, then let
//! Hipster manage it — showing the library is not hard-wired to the
//! paper's board.
//!
//! ```text
//! cargo run --release --example custom_platform
//! ```

use hipster::workloads::LcWorkload;
use hipster::{
    Constant, Engine, Frequency, Hipster, LcModel, Manager, Platform, PlatformBuilder,
    PolicySummary, QosTarget,
};

fn custom_platform() -> Platform {
    // A hypothetical 4-big + 8-small edge server with wider DVFS ranges.
    PlatformBuilder::new("edge-4B8S")
        .big_cores(4, 2.2, &[(800, 0.80), (1400, 0.90), (2000, 1.0)], 4096)
        .small_cores(8, 1.1, &[(600, 0.85), (1000, 1.0)], 2048)
        .build()
        .expect("valid platform")
}

fn rpc_service() -> LcWorkload {
    // A gRPC-ish service: 200 µs mean on a big core at 2 GHz, p99 ≤ 5 ms.
    LcWorkload::builder("rpc")
        .max_load_rps(12_000.0)
        .qos(QosTarget::new(0.99, 0.005))
        .work(300.0, 0.8)
        .mem_seconds(40e-6)
        .big_speed(2.0e6, Frequency::from_mhz(2000))
        .small_ipc_penalty(2.4)
        .burst_mean(4.0)
        .build()
}

fn main() {
    let platform = custom_platform();
    println!(
        "platform {:?}: {} configurations in the action space",
        platform.name(),
        platform.all_configs().len()
    );
    let service = rpc_service();
    let qos = service.qos();
    let policy = Hipster::interactive(&platform, 1)
        .learning_intervals(120)
        .bucket_width(0.05)
        .build();
    let engine = Engine::new(
        platform,
        Box::new(service),
        Box::new(Constant::new(0.55, 400.0)),
        1,
    );
    let trace = Manager::new(engine, Box::new(policy)).run(400);
    let s = PolicySummary::from_trace("HipsterIn@edge", &trace, qos);
    println!(
        "{}: QoS guarantee {:.1}% at {:.2} W mean power, {} migrations over {} s",
        s.name,
        s.qos_guarantee_pct,
        trace.mean_power_w(),
        s.migrations,
        trace.len()
    );
    let last = trace.intervals().last().expect("non-empty");
    println!(
        "steady-state configuration: {} (big cluster at {} GHz)",
        last.config.lc, last.config.big_freq
    );
}
