//! A 64-node cluster riding out a transient-revocation wave: 48 private
//! nodes behind a power-of-two balancer lose machines to
//! CloudCoaster-style revocations mid-run, and the resilience layer —
//! dead-node masking, capped-backoff retries, watermark overflow as
//! graceful degradation — keeps serving. The same wave is replayed with
//! mitigation disabled to show what it buys.
//!
//! ```text
//! cargo run --release --example faults [preset]
//! ```
//!
//! `preset` picks the fault regime: `memcached-revocable` (default) or
//! `memcached-straggler`.

use hipster::workloads::preset;
use hipster::{
    fault_preset, ClusterSpec, ClusterSummary, DispatchPolicy, MmppLoad, OverflowSpec, Platform,
    Policy, RetrySpec, StaticPolicy,
};

fn ride(preset_name: &'static str, mitigation: bool) -> ClusterSummary {
    let intervals = 80;
    let interval_s = 0.05;
    let tag = if mitigation { "mitigated" } else { "exposed" };
    ClusterSpec::new(
        format!("faults-64/{preset_name}/{tag}"),
        Platform::juno_r1(),
    )
    .workload_with(move || Box::new(preset(preset_name).expect("workload preset")))
    .load(MmppLoad::new(
        0.60,
        10.0 * interval_s,
        intervals as f64 * interval_s,
        17,
    ))
    .policy(|p: &Platform, _| Box::new(StaticPolicy::all_big(p)) as Box<dyn Policy>)
    .dispatch(DispatchPolicy::PowerOfTwo)
    .private_nodes(48)
    .cloud_nodes(16)
    .overflow(OverflowSpec::new(0.85, 0.12 / 3600.0))
    .intervals(intervals)
    .interval_s(interval_s)
    .seed(7)
    // The wave itself: per-node Poisson fault episodes from a dedicated
    // split-seeded RNG stream — identical with mitigation on or off.
    .faults(fault_preset(preset_name).expect("fault preset"))
    .retry(RetrySpec::default())
    .mitigation(mitigation)
    .build()
    .expect("valid faulted cluster spec")
    .run()
    .summary
}

fn main() {
    let preset_name: &'static str = match std::env::args().nth(1).as_deref() {
        None | Some("memcached-revocable") => "memcached-revocable",
        Some("memcached-straggler") => "memcached-straggler",
        Some(other) => {
            eprintln!(
                "unknown fault preset {other:?}; try memcached-revocable, memcached-straggler"
            );
            std::process::exit(2);
        }
    };

    let on = ride(preset_name, true);
    let off = ride(preset_name, false);
    println!("fault wave: {preset_name} over 64 nodes (48 private + 16 cloud)");
    println!(
        "  fault pressure       {} revoked + {} straggling node-intervals",
        on.revoked_node_intervals, on.straggling_node_intervals
    );
    for (tag, s) in [("mitigation ON ", &on), ("mitigation OFF", &off)] {
        println!(
            "  {tag}  QoS {:5.1} %   p99 {:6.2} ms   retried {:3}   dropped {:3}   spill {:4.1} %",
            s.qos_guarantee_pct,
            s.mean_p99_s * 1e3,
            s.retried_quanta,
            s.dropped_quanta,
            s.spill_frac * 100.0
        );
    }
    println!(
        "\nThe resilience layer masks revoked nodes out of dispatch, steers \
         power-of-two picks around stragglers, re-dispatches stranded work \
         with capped exponential backoff, and lets the occupancy watermark \
         convert lost private capacity into cloud spill."
    );
}
