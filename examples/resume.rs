//! Durable sweeps: interrupt a journaled fleet mid-run, resume it from
//! the `FileStore`, and verify the merged results are byte-identical to
//! an uninterrupted run.
//!
//! ```text
//! cargo run --release --example resume
//! ```
//!
//! The "crash" is emulated the way a SIGKILL actually lands: the sweep
//! runs to completion once, then its journal file is truncated at an
//! arbitrary byte offset — mid-cell, even mid-line — and a second fleet
//! resumes from whatever prefix survived. Completed cells restore from
//! the journal without re-running; the torn tail is discarded and only
//! the missing cells execute.

use std::fs;

use hipster::workloads::memcached;
use hipster::{FileStore, Fleet, Platform, Policy, ScenarioOutcome, ScenarioSpec, StaticPolicy};

/// The sweep: six load levels, one scenario each, pinned seeds.
fn specs() -> Vec<ScenarioSpec> {
    (0..6)
        .map(|i| {
            let load = 0.3 + 0.1 * i as f64;
            ScenarioSpec::new(format!("resume/load-{load:.1}"), Platform::juno_r1())
                .workload_with(|| Box::new(memcached()))
                .load(hipster::Constant::new(load, 30.0))
                .policy(|p: &Platform, _| Box::new(StaticPolicy::all_big(p)) as Box<dyn Policy>)
                .intervals(30)
                .seed(7000 + i)
        })
        .collect()
}

/// FNV-1a over every outcome's CSV + summary — one number that moves if
/// any byte of any result moves.
fn digest(outcomes: &[ScenarioOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for o in outcomes {
        for chunk in [
            o.name.as_str(),
            &o.trace.to_csv(),
            &format!("{:?}", o.summary),
        ] {
            for b in chunk.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hipster-resume-example-{}", std::process::id()));

    // Reference: the same sweep, never interrupted, no store involved.
    let fleet: Fleet = specs().into_iter().collect();
    let uninterrupted = fleet.run().expect("valid sweep");
    println!("uninterrupted digest: {:016x}", digest(&uninterrupted));

    // First attempt: journal every cell, then "crash" by chopping the
    // journal to 40% of its bytes (a torn final line included).
    let mut store = FileStore::create(&dir).expect("create store");
    let fleet: Fleet = specs().into_iter().collect();
    fleet.resume(&mut store).expect("journaled sweep");
    drop(store);
    let journal = FileStore::journal_path(&dir);
    let bytes = fs::read(&journal).expect("journal bytes");
    let cut = bytes.len() * 2 / 5;
    fs::write(&journal, &bytes[..cut]).expect("emulate SIGKILL");
    println!("killed: journal truncated {} -> {cut} bytes", bytes.len());

    // Resume: recovery drops the torn tail, restores whole cells, and
    // re-runs only the remainder.
    let mut store = FileStore::open(&dir).expect("recover journal");
    println!("recovered {} completed cell(s)", store.len());
    let fleet: Fleet = specs().into_iter().collect();
    let (resumed, stats) = fleet.resume(&mut store).expect("resumed sweep");
    println!(
        "resumed: {} restored, {} re-run",
        stats.resumed, stats.scenarios
    );
    println!("resumed digest:       {:016x}", digest(&resumed));

    assert_eq!(
        digest(&uninterrupted),
        digest(&resumed),
        "resume must be byte-identical to the uninterrupted sweep"
    );
    println!("byte-identical: yes");
    let _ = fs::remove_dir_all(&dir);
}
