//! A 64-node two-tier cluster: 48 private Juno nodes running Hipster
//! behind a power-of-two-choices balancer, plus 16 cloud overflow nodes
//! that absorb (and bill for) the bursts the private tier cannot — the
//! beyond-paper "what if the paper's machine were a fleet" scenario.
//!
//! ```text
//! cargo run --release --example cluster [policy]
//! ```
//!
//! `policy` picks the balancer: `p2c` (default), `least-loaded`,
//! `round-robin` or `random`.

use hipster::workloads::memcached_bursty;
use hipster::{ClusterSpec, DispatchPolicy, Hipster, MmppLoad, OverflowSpec, Platform, Policy};

fn main() {
    let policy = std::env::args().nth(1).unwrap_or_else(|| "p2c".into());
    let dispatch = DispatchPolicy::parse(&policy).unwrap_or_else(|| {
        eprintln!("unknown dispatch policy {policy:?}; try p2c, least-loaded, round-robin, random");
        std::process::exit(2);
    });

    let intervals = 20;
    let interval_s = 0.05;
    let sim = ClusterSpec::new(
        format!("cluster-64/{}", dispatch.name()),
        Platform::juno_r1(),
    )
    .workload_with(|| Box::new(memcached_bursty()))
    // A mean-preserving bursty envelope around 55% of private capacity:
    // calm stretches punctuated by 4× bursts (the MMPP of the bench).
    .load(MmppLoad::new(
        0.55,
        10.0 * interval_s,
        intervals as f64 * interval_s,
        17,
    ))
    .policy(|p: &Platform, seed| {
        Box::new(Hipster::interactive(p, seed).learning_intervals(4).build()) as Box<dyn Policy>
    })
    .dispatch(dispatch)
    .private_nodes(48)
    .cloud_nodes(16)
    // Spill past 85% private occupancy, at a public-cloud vCPU price.
    .overflow(OverflowSpec::new(0.85, 0.12 / 3600.0))
    .intervals(intervals)
    .interval_s(interval_s)
    .seed(7)
    .build()
    .expect("valid cluster spec");

    let out = sim.run();
    let s = &out.summary;
    println!("{}", s.name);
    println!("  intervals            {}", s.intervals);
    println!(
        "  QoS guarantee        {:.1} % of intervals (p95 ≤ 10 ms)",
        s.qos_guarantee_pct
    );
    println!(
        "  cluster p99          {:.2} ms mean, {:.2} ms peak",
        s.mean_p99_s * 1e3,
        s.peak_p99_s * 1e3
    );
    println!(
        "  completions          {} ({} timeouts)",
        s.completions, s.timeouts
    );
    println!("  private energy       {:.1} J", s.total_energy_j);
    println!(
        "  cloud bill           ${:.6} for {:.3} req-s",
        s.total_cloud_usd, out.cloud_bill.req_seconds
    );
    println!(
        "  spilled to cloud     {:.1} % of quanta",
        s.spill_frac * 100.0
    );
    println!(
        "  dispatch decisions   {} (digest {:#018x})",
        out.decisions, out.decision_digest
    );
}
