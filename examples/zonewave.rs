//! A 64-node cluster surviving a zone-scale fault wave: 48 private
//! nodes in 4 zones (2 racks each) lose whole zones at a time to
//! correlated revocation waves, racks straggle together, and every
//! request can draw its own bounded-Pareto slowdown. The full
//! tail-tolerance stack — domain-aware dispatch steering, hedged
//! backups, and an admission ladder that browns out the collocated
//! SPEC batch before deferring best-effort arrivals — is replayed
//! with mitigation on and off, QoS / p99 / dollars side by side.
//!
//! ```text
//! cargo run --release --example zonewave [seed]
//! ```
//!
//! `seed` (default 8) moves every split-seeded stream at once — load
//! bursts, wave timelines, per-request straggles — while either arm
//! stays byte-identical when replayed at the same seed.

use hipster::sim::BatchProgram;
use hipster::workloads::{preset, spec};
use hipster::{
    domain_fault_preset, fault_preset, AdmissionSpec, BatchDeadline, ClusterOutcome, ClusterSpec,
    DispatchPolicy, HedgeSpec, MmppLoad, OverflowSpec, Platform, Policy, RetrySpec, StaticPolicy,
    TopologySpec,
};

const INTERVALS: usize = 80;
const INTERVAL_S: f64 = 0.05;
const PRIVATE: usize = 48;
const CLOUD: usize = 16;

fn ride(seed: u64, mitigation: bool) -> ClusterOutcome {
    let tag = if mitigation { "mitigated" } else { "exposed" };
    let duration = INTERVALS as f64 * INTERVAL_S;
    ClusterSpec::new(format!("zonewave-64/{tag}"), Platform::juno_r1())
        .workload_with(|| Box::new(preset("memcached-zonewave").expect("workload preset")))
        .load(MmppLoad::new(0.60, 10.0 * INTERVAL_S, duration, 17))
        .policy(|p: &Platform, _| Box::new(StaticPolicy::all_big(p)) as Box<dyn Policy>)
        .dispatch(DispatchPolicy::PowerOfTwo)
        .private_nodes(PRIVATE)
        .cloud_nodes(CLOUD)
        .overflow(OverflowSpec::new(0.85, 0.12 / 3600.0))
        .intervals(INTERVALS)
        .interval_s(INTERVAL_S)
        .seed(seed)
        // The fault model, all from dedicated split-seeded streams and
        // identical across both arms: per-request stragglers (the
        // preset's FaultSpec), plus correlated zone/rack wave episodes
        // over the declared topology.
        .faults(fault_preset("memcached-zonewave").expect("fault preset"))
        .topology(TopologySpec::new(4, 2, PRIVATE / 8).expect("4x2 topology"))
        .domain_faults(domain_fault_preset("memcached-zonewave").expect("domain fault preset"))
        // The tail-tolerance stack (only acts with mitigation on).
        .hedge(HedgeSpec::after(1.0))
        .admission(AdmissionSpec::new(0.5, 0.75, 0.5))
        .retry(RetrySpec::default())
        // The collocated batch the admission ladder sheds first.
        .batch_with(|| {
            spec::programs()
                .into_iter()
                .take(2)
                .map(|p| Box::new(p) as Box<dyn BatchProgram>)
                .collect()
        })
        // Eight tasks sized so an unshed run drains the bag just before
        // the deadline (~2.1e9 batch IPS per private node): every
        // interval the admission ladder sheds pushes tasks past it.
        .batch_deadline(BatchDeadline::new(
            8,
            0.97 * 2.1e9 * PRIVATE as f64 * (0.75 * duration) / 8.0,
            0.75 * duration,
        ))
        .mitigation(mitigation)
        .build()
        .expect("valid zone-wave cluster spec")
        .run()
}

fn main() {
    let seed: u64 = match std::env::args().nth(1) {
        None => 8,
        Some(arg) => arg.parse().unwrap_or_else(|_| {
            eprintln!("seed must be an integer, got {arg:?}");
            std::process::exit(2);
        }),
    };
    let on = ride(seed, true);
    let off = ride(seed, false);
    println!(
        "zone wave: memcached-zonewave over {} nodes ({PRIVATE} private in 4 zones x 2 racks + \
         {CLOUD} cloud), seed {seed}",
        PRIVATE + CLOUD
    );
    println!(
        "  fault pressure       {} revoked + {} straggling node-intervals, {} requests straggled",
        on.summary.revoked_node_intervals,
        on.summary.straggling_node_intervals,
        off.trace
            .intervals()
            .iter()
            .map(|iv| iv.straggled_requests)
            .sum::<u64>(),
    );
    let batch_instr = |o: &ClusterOutcome| -> f64 {
        o.trace
            .intervals()
            .iter()
            .map(|iv| iv.batch_ips * iv.duration_s)
            .sum()
    };
    println!(
        "  batch drained        {:.3e} instructions mitigated, {:.3e} exposed",
        batch_instr(&on),
        batch_instr(&off)
    );
    for (tag, o) in [("mitigation ON ", &on), ("mitigation OFF", &off)] {
        let s = &o.summary;
        println!(
            "  {tag}  QoS {:5.1} %   p99 {:6.2} ms   hedged {:5}   deferred {:4}   shed {:2} iv   \
             miss {:5.1} %   cloud $ {:.4}",
            s.qos_guarantee_pct,
            s.mean_p99_s * 1e3,
            s.hedged_requests,
            s.deferred_quanta,
            s.shed_intervals,
            s.deadline_miss_pct.unwrap_or(0.0),
            s.total_cloud_usd,
        );
    }
    println!(
        "\nWhen a zone-scale wave revokes a quarter of the private tier at \
         once, domain steering re-draws dispatch probes out of degraded \
         zones, hedged backups cap each straggling request at the hedge \
         delay, and the admission ladder sheds the collocated batch (then \
         defers best-effort arrivals) before the interactive tail collapses \
         — the exposed arm keeps feeding dead zones instead and pays for it \
         in p99."
    );
}
