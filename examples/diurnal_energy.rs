//! Policy shoot-out on Memcached: every policy of the paper's Table 3 over
//! a (shortened) diurnal day, reporting QoS guarantee, tardiness and
//! energy.
//!
//! ```text
//! cargo run --release --example diurnal_energy
//! ```

use hipster::workloads::memcached;
use hipster::{
    Diurnal, Engine, HeuristicMapper, Hipster, LcModel, Manager, Platform, Policy, PolicySummary,
    StaticPolicy, Trace,
};

fn run(policy: Box<dyn Policy>, secs: usize) -> Trace {
    let platform = Platform::juno_r1();
    let engine = Engine::new(
        platform,
        Box::new(memcached()),
        Box::new(Diurnal::paper()),
        2024,
    );
    Manager::new(engine, policy).run(secs)
}

fn main() {
    let platform = Platform::juno_r1();
    let qos = memcached().qos();
    let secs = 1050; // half a compressed diurnal "36-hour" day
    let learn = 300;

    let policies: Vec<(&str, Box<dyn Policy>)> = vec![
        (
            "Static (all big)",
            Box::new(StaticPolicy::all_big(&platform)),
        ),
        (
            "Static (all small)",
            Box::new(StaticPolicy::all_small(&platform)),
        ),
        (
            "Heuristic",
            Box::new(HeuristicMapper::with_defaults(&platform)),
        ),
        (
            "Octopus-Man",
            Box::new(hipster::OctopusMan::with_defaults(&platform)),
        ),
        (
            "HipsterIn",
            Box::new(
                Hipster::interactive(&platform, 2024)
                    .learning_intervals(learn)
                    .bucket_width(0.03)
                    .build(),
            ),
        ),
    ];

    let mut summaries = Vec::new();
    for (name, policy) in policies {
        println!("Running {name}…");
        let trace = run(policy, secs);
        summaries.push(PolicySummary::from_trace(name, &trace, qos));
    }
    let baseline = summaries[0].clone();

    println!(
        "\n{:<20} {:>9} {:>10} {:>10} {:>11}",
        "policy", "QoS %", "tardiness", "energy J", "vs big"
    );
    for s in &summaries {
        println!(
            "{:<20} {:>8.1}% {:>10} {:>10.1} {:>10.1}%",
            s.name,
            s.qos_guarantee_pct,
            s.mean_tardiness
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            s.total_energy_j,
            s.energy_reduction_pct_vs(&baseline),
        );
    }
    println!("\n(compare the shape with the paper's Table 3)");
}
