//! Collocation (HipsterCo): run Web-Search together with SPEC CPU2006
//! batch programs and maximize batch throughput while protecting the
//! latency-critical QoS — the scenario of the paper's Fig. 11.
//!
//! ```text
//! cargo run --release --example colocation [program]
//! ```
//!
//! `program` defaults to `calculix` (the paper's best case); try `lbm` or
//! `libquantum` for the memory-bound contrast.

use hipster::workloads::spec;
use hipster::workloads::web_search;
use hipster::{Diurnal, Engine, Hipster, LcModel, Manager, Platform, StaticPolicy, Trace};

fn run(policy: Box<dyn hipster::Policy>, program: &spec::SpecProgram, secs: usize) -> Trace {
    let platform = Platform::juno_r1();
    let engine = Engine::new(
        platform,
        Box::new(web_search()),
        Box::new(Diurnal::paper()),
        7,
    )
    .with_batch_pool(vec![Box::new(program.clone())]);
    Manager::new(engine, policy).collocated().run(secs)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "calculix".into());
    let program = spec::program(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown SPEC program {name:?}; available: {}",
            spec::programs()
                .iter()
                .map(|p| {
                    use hipster::sim::BatchProgram as _;
                    p.name().to_string()
                })
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    });
    let platform = Platform::juno_r1();
    let qos = web_search().qos();
    let secs = 900;
    let (max_b, max_s) = spec::max_ips(&program);

    println!(
        "Batch program: {name} (memory-boundedness {:.2})",
        program.memory_boundedness()
    );
    println!("Running static mapping (LC on 2 big cores, batch on 4 small)…");
    let static_trace = run(Box::new(StaticPolicy::all_big(&platform)), &program, secs);
    println!("Running HipsterCo…");
    let co_trace = run(
        Box::new(
            Hipster::collocated(&platform, max_b + max_s, 7)
                .learning_intervals(300)
                .bucket_width(0.06)
                .build(),
        ),
        &program,
        secs,
    );

    let report = |label: &str, t: &Trace| {
        println!(
            "{label:<10} QoS guarantee {:>5.1}%   batch {:>6.2} GIPS   energy {:>7.1} J",
            t.qos_guarantee_pct(qos),
            t.mean_batch_ips() / 1e9,
            t.total_energy_j()
        );
    };
    println!();
    report("static", &static_trace);
    report("HipsterCo", &co_trace);
    println!(
        "\nHipsterCo batch speedup over static: {:.2}× (paper mean: 2.3×, \
         calculix 3.35×, libquantum 1.6×)",
        co_trace.mean_batch_ips() / static_trace.mean_batch_ips().max(1.0)
    );
}
