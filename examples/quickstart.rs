//! Quickstart: manage Web-Search with HipsterIn under the paper's diurnal
//! load, and compare against the static all-big baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hipster::workloads::web_search;
use hipster::{
    Diurnal, Engine, Hipster, LcModel, Manager, Platform, PolicySummary, StaticPolicy, Trace,
};

fn run(policy: Box<dyn hipster::Policy>, secs: usize) -> Trace {
    let platform = Platform::juno_r1();
    let engine = Engine::new(
        platform,
        Box::new(web_search()),
        Box::new(Diurnal::paper()),
        42,
    );
    Manager::new(engine, policy).run(secs)
}

fn main() {
    let platform = Platform::juno_r1();
    let qos = web_search().qos();
    let secs = 900;

    println!("Running static (all big cores) baseline…");
    let baseline = run(Box::new(StaticPolicy::all_big(&platform)), secs);
    println!("Running HipsterIn (300 s learning phase)…");
    let hipster = run(
        Box::new(
            Hipster::interactive(&platform, 42)
                .learning_intervals(300)
                .bucket_width(0.06)
                .build(),
        ),
        secs,
    );

    let base = PolicySummary::from_trace("Static(2B-1.15)", &baseline, qos);
    let hip = PolicySummary::from_trace("HipsterIn", &hipster, qos);
    for s in [&base, &hip] {
        println!(
            "\n{:<16} QoS guarantee {:>5.1}%   energy {:>7.1} J   migrations {}",
            s.name, s.qos_guarantee_pct, s.total_energy_j, s.migrations
        );
    }
    println!(
        "\nHipsterIn saves {:.1}% energy vs the static baseline while keeping \
         QoS ({} target).",
        hip.energy_reduction_pct_vs(&base),
        qos
    );
}
