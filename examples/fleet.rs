//! Fleet orchestration: a 3-policy × 2-load scenario matrix runs in
//! parallel across OS threads, with JSON-lines telemetry streamed under
//! `results/` and results collected in declaration order.
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use hipster::core::Zones;
use hipster::workloads::{load_preset, memcached};
use hipster::{
    Fleet, Hipster, JsonLinesSink, OctopusMan, Platform, Policy, ScenarioSpec, StaticPolicy,
};

type PolicyFn = Box<dyn Fn(&Platform, u64) -> Box<dyn Policy> + Send + Sync>;

/// Builds one of the matrix's policy factories; each scenario gets its own
/// factory so stochastic policies draw from the scenario's split seed.
fn make_policy(name: &str, zones: Zones) -> PolicyFn {
    match name {
        "static-big" => Box::new(|p, _| Box::new(StaticPolicy::all_big(p))),
        "octopus-man" => Box::new(move |p, _| Box::new(OctopusMan::new(p, zones))),
        "hipster-in" => Box::new(move |p, seed| {
            Box::new(
                Hipster::interactive(p, seed)
                    .learning_intervals(200)
                    .zones(zones)
                    .bucket_width(0.03)
                    .build(),
            )
        }),
        other => unreachable!("unknown policy {other}"),
    }
}

fn main() {
    let qos = {
        use hipster::LcModel as _;
        memcached().qos()
    };
    let zones = Zones::new(0.50, 0.15);
    let secs = 600;

    // The matrix: every policy under every load pattern, loads declared by
    // name (the string form scenario sweeps and CLIs use).
    let policies = ["static-big", "octopus-man", "hipster-in"];
    let loads = ["diurnal", "ramp:0.3:0.9:300"];

    let mut fleet = Fleet::new().base_seed(2026);
    for policy_name in policies {
        for load in loads {
            let name = format!("{policy_name}/{load}");
            let jsonl = JsonLinesSink::create(format!(
                "results/fleet_{}.jsonl",
                name.replace([':', '/'], "_")
            ))
            .expect("results/ is writable");
            fleet.push(
                ScenarioSpec::new(&name, Platform::juno_r1())
                    .workload_with(|| Box::new(memcached()))
                    .load_with({
                        let load = load.to_string();
                        move || load_preset(&load).expect("known load preset")
                    })
                    .policy(make_policy(policy_name, zones))
                    .intervals(secs)
                    .sink(Box::new(jsonl)),
            );
        }
    }

    println!(
        "running {} scenarios ({} policies × {} loads, {secs} s each)…\n",
        fleet.len(),
        policies.len(),
        loads.len()
    );
    let outcomes = fleet.run().expect("all scenarios valid");

    println!(
        "{:<28} {:>20} {:>14} {:>12} {:>11}",
        "scenario", "seed", "QoS guarantee", "energy (J)", "migrations"
    );
    for o in &outcomes {
        println!(
            "{:<28} {:>20} {:>13.1}% {:>12.0} {:>11}",
            o.name,
            o.seed,
            o.trace.qos_guarantee_pct(qos),
            o.trace.total_energy_j(),
            o.trace.total_migrations()
        );
    }
    println!("\nper-interval telemetry: results/fleet_*.jsonl (one JSON object per interval)");
}
