//! Minimal, dependency-free stand-in for the [`criterion`] benchmarking
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements the slice of criterion's API the
//! `hipster-bench` benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — on top of a plain
//! `std::time::Instant` timing loop.
//!
//! Reported numbers are wall-clock medians over `sample_size` samples, each
//! sample timing a batch of iterations auto-sized to roughly
//! `measurement_time / sample_size`. There is no outlier analysis, no
//! statistical regression and no HTML report; output is one line per
//! benchmark:
//!
//! ```text
//! qtable/get                       time: [median 18 ns  min 17 ns  max 24 ns]  (30 samples)
//! ```
//!
//! A positional CLI filter argument is honoured (`cargo bench -- qtable`),
//! as is `--test`, which runs every routine exactly once (used by CI to
//! smoke the benches without paying measurement time).
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched benchmark amortises its setup. Only a hint here; every
/// variant behaves like `PerIteration`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state (criterion would batch many per alloc).
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    config: BenchConfig,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion conventionally pass; ignored.
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            config: BenchConfig::default(),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs one benchmark, unless it is filtered out on the command line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            config: self.config,
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut b);
        match b.result {
            _ if self.test_mode => println!("{name:<40} ok (test mode)"),
            Some(r) => println!(
                "{name:<40} time: [median {}  min {}  max {}]  ({} samples)",
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.samples
            ),
            None => println!("{name:<40} (no measurement — routine never invoked)"),
        }
        self
    }

    /// Criterion compatibility no-op (report finalisation).
    pub fn final_summary(&mut self) {}
}

#[derive(Clone, Copy, Debug)]
struct Measurement {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Times a single benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    config: BenchConfig,
    test_mode: bool,
    result: Option<Measurement>,
}

impl Bencher {
    /// Benchmarks `routine` with no per-iteration setup. The whole batch is
    /// timed with a single `Instant` pair, so clock-read overhead does not
    /// pollute nanosecond-scale routines.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|iters| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            t.elapsed()
        });
    }

    /// Benchmarks `routine` with an untimed `setup` before each call. Setup
    /// forces per-iteration timing, so clock-read overhead (tens of ns per
    /// iteration) is included — fine for the µs-scale routines this
    /// workspace batches.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|iters| {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                spent += t.elapsed();
            }
            spent
        });
    }

    /// Core loop: `timed_batch` runs the routine `iters` times and returns
    /// the time spent in the timed region only.
    fn run<F>(&mut self, mut timed_batch: F)
    where
        F: FnMut(u64) -> Duration,
    {
        if self.test_mode {
            timed_batch(1);
            return;
        }

        // Warm-up, and a first estimate of the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            warm_spent += timed_batch(1);
            warm_iters += 1;
        }
        let est_iter = (warm_spent / warm_iters as u32).max(Duration::from_nanos(1));

        // Size each sample so all samples fit in ~measurement_time.
        let per_sample = self.config.measurement_time / self.config.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / est_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples_ns = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time * 2;
        for _ in 0..self.config.sample_size {
            let spent = timed_batch(iters_per_sample);
            samples_ns.push(spent.as_nanos() as f64 / iters_per_sample as f64);
            // Never exceed 2× the configured measurement time, even when
            // the warm-up estimate was off.
            if Instant::now() > deadline {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = samples_ns[samples_ns.len() / 2];
        self.result = Some(Measurement {
            median_ns,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().unwrap(),
            samples: samples_ns.len(),
        });
    }
}

/// Declares a group of benchmark targets, optionally with a configured
/// [`Criterion`] (the `name = …; config = …; targets = …` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_routine() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        c.test_mode = false;
        c.filter = None;
        let mut ran = false;
        c.bench_function("trivial", |b| {
            ran = true;
            b.iter(|| black_box(3u64).wrapping_mul(7))
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(3));
        c.test_mode = false;
        c.filter = None;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1.2e4), "12.00 µs");
        assert_eq!(fmt_ns(1.2e7), "12.00 ms");
        assert_eq!(fmt_ns(1.2e10), "12.00 s");
    }
}
