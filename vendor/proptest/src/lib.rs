//! Minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the slice of proptest's API the
//! workspace's property tests use:
//!
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//!   `prop_filter_map` combinators, [`strategy::Just`] and tuple/range
//!   strategies;
//! * [`collection::vec`] and [`arbitrary::any`];
//! * [`test_runner::Config`] (a.k.a. `ProptestConfig`).
//!
//! Semantics are simplified on purpose: inputs are random but generated
//! from a seed derived from the test name (so failures are reproducible
//! run-to-run), and there is **no shrinking** — a failing case panics with
//! the case number and the assertion message. The default number of cases
//! per property is 64 (proptest's default of 256 is overkill for the
//! simulation-heavy properties in this repo).
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    //! Test-runner configuration, error type and deterministic RNG.

    /// Configuration for a `proptest!` block (`ProptestConfig` in the
    /// prelude). Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case: carries the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic input generator (xoshiro256++), seeded from the test
    /// name so each property gets a distinct but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn seed(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Creates the generator for the named property test.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::seed(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let [a, b, c, d] = self.s;
            let out = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
            let t = b << 17;
            let mut s = [a, b, c, d];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            out
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot draw below 0");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the concrete strategies the tests use.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply draws a fresh value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns true.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Maps values through `f`, retrying when it returns `None`.
        fn prop_filter_map<T, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<T>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// How many times filtering strategies retry before giving up.
    const MAX_FILTER_TRIES: usize = 1024;

    /// Always yields a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_TRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({:?}) rejected too many values", self.whence);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone, Debug)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            for _ in 0..MAX_FILTER_TRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map({:?}) rejected too many values",
                self.whence
            );
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by
    /// [`crate::prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty float range strategy");
                    // Occasionally emit the exact endpoints so boundary
                    // behaviour gets exercised.
                    match rng.below(64) {
                        0 => lo,
                        1 => hi,
                        _ => lo + (hi - lo) * rng.unit_f64() as $t,
                    }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for types with a canonical strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` (the attribute is written by the caller, as in real proptest)
/// that runs `body` against `Config::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $($crate::__proptest_case!{$config; $(#[$meta])* fn $name($($arg in $strat),+) $body})*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $($crate::__proptest_case!{
            $crate::test_runner::Config::default();
            $(#[$meta])* fn $name($($arg in $strat),+) $body
        })*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($config:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "[proptest {}] case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Like `assert!`, but fails the current property case instead of
/// panicking directly (so the harness can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Like `assert_ne!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed(1);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u64..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&(0.5f64..=2.0), &mut rng);
            assert!((0.5..=2.0).contains(&y));
        }
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = crate::test_runner::TestRng::seed(2);
        let s = (0u64..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_picks_members(x in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }
}
